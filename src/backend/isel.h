// Instruction selection: IR -> machine IR with virtual registers.
//
// This pass creates the IR<->assembly mapping asymmetries the paper's
// Table I catalogs:
//  * GEPs whose address expression fits [base + index*scale + disp] fold
//    into the addressing mode of their load/store users and emit NO
//    arithmetic instruction; the rest lower to lea/imul/add chains that
//    PINFI classifies as arithmetic.
//  * icmp/fcmp feeding a branch in the same block fuse into cmp+jcc
//    (flags), matching PINFI's "next instruction is a conditional branch"
//    cmp category.
//  * Loads fold into ALU memory operands when safe, making the assembly
//    "more packed" than the IR (Table IV's 'all' counts).
//  * zext of an already-zero-extended register is a plain mov: many IR cast
//    instructions have no assembly counterpart.
#pragma once

#include <map>
#include <string>

#include "ir/module.h"
#include "machine/runtime.h"
#include "x86/program.h"

namespace faultlab::backend {

/// Module-wide lowering tables shared by all functions.
struct LoweringContext {
  const ir::Module* module = nullptr;
  const machine::GlobalLayout* globals = nullptr;
  std::map<const ir::Function*, std::size_t> func_ordinal;     // user funcs
  std::map<const ir::Function*, std::size_t> builtin_ordinal;  // builtins
  std::vector<x86::BuiltinSig> builtins;

  /// Double-constant pool, placed directly after the globals region.
  std::map<std::uint64_t, std::uint64_t> double_pool;  // bits -> address
  std::uint64_t pool_cursor = 0;

  static LoweringContext build(const ir::Module& module,
                               const machine::GlobalLayout& globals);
  std::uint64_t pool_address(double value);
};

/// Splits critical edges of `fn` (inserting forwarding blocks) so phi
/// elimination can place copies on edges. Mutates the IR; keeps it
/// verifier-clean.
void split_critical_edges(ir::Function& fn);

/// One pending phi-lowering copy (scheduled by instruction selection,
/// materialized by phi elimination).
struct PhiCopy {
  std::int64_t pred_label;  // copies execute at the end of this block
  x86::RegId dest;          // the phi's vreg
  // Source: exactly one of reg / imm / double constant.
  x86::RegId src_reg = x86::kNoReg;
  bool src_is_imm = false;
  std::int64_t imm = 0;
  bool is_xmm = false;
};

struct IselResult {
  x86::MachineFunction mf;
  std::vector<PhiCopy> phi_copies;
};

/// Lowers `fn` to machine IR. Preconditions: non-builtin, verifier-clean,
/// critical edges split, and blocks ordered so defs precede uses in list
/// order (reverse postorder — see driver::lower_module).
IselResult select_instructions(const ir::Function& fn, LoweringContext& ctx);

}  // namespace faultlab::backend
