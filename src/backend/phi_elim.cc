#include "backend/phi_elim.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace faultlab::backend {

namespace {

using x86::Inst;
using x86::MBlock;
using x86::Op;
using x86::RegId;
using x86::SrcKind;

Inst copy_inst(const PhiCopy& c) {
  Inst i;
  if (c.is_xmm) {
    if (c.src_is_imm) {
      // imm carries the constant-pool address of the double.
      i.op = Op::MovsdRM;
      i.dst = c.dest;
      i.mem.disp = c.imm;
    } else {
      i.op = Op::MovsdRR;
      i.dst = c.dest;
      i.src = c.src_reg;
      i.src_kind = SrcKind::Reg;
    }
    return i;
  }
  if (c.src_is_imm) {
    i.op = Op::MovRI;
    i.dst = c.dest;
    i.imm = c.imm;
    i.src_kind = SrcKind::Imm;
    i.width = 8;
    return i;
  }
  i.op = Op::MovRR;
  i.dst = c.dest;
  i.src = c.src_reg;
  i.src_kind = SrcKind::Reg;
  i.width = 8;
  return i;
}

}  // namespace

void eliminate_phis(x86::MachineFunction& mf,
                    const std::vector<PhiCopy>& copies) {
  // Group by predecessor block.
  std::map<std::int64_t, std::vector<PhiCopy>> by_pred;
  for (const PhiCopy& c : copies) by_pred[c.pred_label].push_back(c);

  for (auto& [label, group] : by_pred) {
    MBlock* block = mf.block_by_label(label);
    if (block == nullptr)
      throw std::logic_error("phi_elim: predecessor block missing");

    // Sequentialize the parallel copy: emit copies whose destination is not
    // read by any pending copy; break cycles with a temp register.
    std::vector<Inst> seq;
    std::vector<PhiCopy> pending = group;
    while (!pending.empty()) {
      bool progressed = false;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        const PhiCopy& c = pending[i];
        const bool dest_read_by_other =
            std::any_of(pending.begin(), pending.end(), [&](const PhiCopy& o) {
              return !o.src_is_imm && o.src_reg == c.dest &&
                     !(o.dest == c.dest && o.src_reg == c.src_reg);
            });
        if (!dest_read_by_other) {
          if (!(c.src_is_imm == false && c.src_reg == c.dest))  // skip self
            seq.push_back(copy_inst(c));
          pending.erase(pending.begin() + i);
          progressed = true;
          break;
        }
      }
      if (progressed) continue;
      // Cycle: save one pending destination into a temp, redirect readers.
      PhiCopy& head = pending.front();
      const RegId temp = head.is_xmm ? mf.fresh_xmm() : mf.fresh_gpr();
      PhiCopy save;
      save.pred_label = head.pred_label;
      save.dest = temp;
      save.src_reg = head.dest;
      save.is_xmm = head.is_xmm;
      seq.push_back(copy_inst(save));
      for (PhiCopy& o : pending)
        if (!o.src_is_imm && o.src_reg == head.dest) o.src_reg = temp;
    }

    block->insts.insert(
        block->insts.begin() +
            static_cast<std::ptrdiff_t>(block->terminator_begin),
        seq.begin(), seq.end());
    block->terminator_begin += seq.size();
  }
}

}  // namespace faultlab::backend
