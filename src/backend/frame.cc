#include "backend/frame.h"

#include <algorithm>
#include <set>

namespace faultlab::backend {

namespace {

using x86::Inst;
using x86::MachineFunction;
using x86::Op;
using x86::RegId;
using x86::SrcKind;

Inst mov_rr(RegId dst, RegId src) {
  Inst i;
  i.op = Op::MovRR;
  i.dst = dst;
  i.src = src;
  i.src_kind = SrcKind::Reg;
  i.width = 8;
  return i;
}

Inst alu_imm(Op op, RegId dst, std::int64_t imm) {
  Inst i;
  i.op = op;
  i.dst = dst;
  i.imm = imm;
  i.src_kind = SrcKind::Imm;
  i.width = 8;
  return i;
}

}  // namespace

void lower_frame(MachineFunction& mf) {
  // GPRs this function clobbers must be preserved (callee-saved
  // convention); XMM registers are caller-saved (the allocator already
  // spilled any value that lives across a call), so they are never saved
  // here — matching the SysV ABI, where all vector registers are volatile.
  std::set<RegId> written_gprs;
  for (const auto& block : mf.blocks) {
    for (const Inst& inst : block.insts) {
      const RegId d = x86::dest_reg(inst);
      if (x86::is_phys_gpr(d)) written_gprs.insert(d);
    }
  }
  written_gprs.erase(x86::RAX);  // return value
  written_gprs.erase(x86::RSP);
  written_gprs.erase(x86::RBP);

  mf.frame.saved_gprs.assign(written_gprs.begin(), written_gprs.end());

  // Prologue at the head of the first block.
  std::vector<Inst> prologue;
  Inst push_rbp;
  push_rbp.op = Op::Push;
  push_rbp.dst = x86::RBP;
  prologue.push_back(push_rbp);
  prologue.push_back(mov_rr(x86::RBP, x86::RSP));
  if (mf.frame.size > 0)
    prologue.push_back(
        alu_imm(Op::Sub, x86::RSP, static_cast<std::int64_t>(mf.frame.size)));
  for (RegId r : mf.frame.saved_gprs) {
    Inst p;
    p.op = Op::Push;
    p.dst = r;
    prologue.push_back(p);
  }

  auto& entry = mf.blocks.front();
  entry.insts.insert(entry.insts.begin(), prologue.begin(), prologue.end());
  entry.terminator_begin += prologue.size();

  // Epilogue before every ret.
  for (auto& block : mf.blocks) {
    for (std::size_t i = 0; i < block.insts.size(); ++i) {
      if (block.insts[i].op != Op::Ret) continue;
      std::vector<Inst> epilogue;
      for (auto it = mf.frame.saved_gprs.rbegin();
           it != mf.frame.saved_gprs.rend(); ++it) {
        Inst p;
        p.op = Op::Pop;
        p.dst = *it;
        epilogue.push_back(p);
      }
      epilogue.push_back(mov_rr(x86::RSP, x86::RBP));
      Inst pop_rbp;
      pop_rbp.op = Op::Pop;
      pop_rbp.dst = x86::RBP;
      epilogue.push_back(pop_rbp);

      block.insts.insert(block.insts.begin() + static_cast<std::ptrdiff_t>(i),
                         epilogue.begin(), epilogue.end());
      i += epilogue.size();
    }
  }
}

}  // namespace faultlab::backend
