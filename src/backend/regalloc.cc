#include "backend/regalloc.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace faultlab::backend {

namespace {

using x86::Inst;
using x86::MachineFunction;
using x86::Op;
using x86::RegId;
using x86::SrcKind;

const RegId kGprPool[] = {x86::RCX, x86::RDX, x86::RSI, x86::RDI,
                          x86::R8,  x86::R9,  x86::R12, x86::R13,
                          x86::R14, x86::R15};
const RegId kXmmPool[] = {x86::kXmmBase + 1,  x86::kXmmBase + 2,
                          x86::kXmmBase + 3,  x86::kXmmBase + 4,
                          x86::kXmmBase + 5,  x86::kXmmBase + 6,
                          x86::kXmmBase + 7,  x86::kXmmBase + 8,
                          x86::kXmmBase + 9,  x86::kXmmBase + 10,
                          x86::kXmmBase + 11, x86::kXmmBase + 12};
const RegId kGprScratch[] = {x86::RBX, x86::R10, x86::R11};
const RegId kXmmScratch[] = {x86::kXmmBase + 13, x86::kXmmBase + 14,
                             x86::kXmmBase + 15};

class LinearScan {
 public:
  explicit LinearScan(MachineFunction& mf) : mf_(mf) {}

  RegAllocStats run() {
    const LivenessResult live = compute_liveness(mf_);
    stats_.vregs = live.intervals.size();
    collect_hints();
    scan(live);
    plan_caller_saves(live);
    rewrite();
    return stats_;
  }

 private:
  struct Active {
    LiveInterval interval;
    RegId phys;
  };

  /// Register-copy hints: `mov vdst, vsrc` works best when both land in
  /// the same physical register — the move then drops as an identity copy.
  void collect_hints() {
    for (const auto& block : mf_.blocks) {
      for (const Inst& inst : block.insts) {
        const bool is_copy =
            (inst.op == Op::MovRR && inst.width == 8) || inst.op == Op::MovsdRR;
        if (!is_copy || inst.src_kind != SrcKind::Reg) continue;
        if (x86::is_virtual(inst.dst) && x86::is_virtual(inst.src))
          hints_.emplace(inst.dst, inst.src);
      }
    }
  }

  void scan(const LivenessResult& live) {
    std::vector<Active> active_gpr, active_xmm;
    std::vector<RegId> free_gpr(std::begin(kGprPool), std::end(kGprPool));
    std::vector<RegId> free_xmm(std::begin(kXmmPool), std::end(kXmmPool));

    auto expire = [](std::vector<Active>& active, std::vector<RegId>& free,
                     std::size_t now) {
      for (std::size_t i = 0; i < active.size();) {
        if (active[i].interval.end < now) {
          free.push_back(active[i].phys);
          active.erase(active.begin() + i);
        } else {
          ++i;
        }
      }
    };

    for (const LiveInterval& iv : live.intervals) {
      const bool xmm = x86::is_xmm_class(iv.vreg);
      auto& active = xmm ? active_xmm : active_gpr;
      auto& free = xmm ? free_xmm : free_gpr;
      expire(active, free, iv.start);

      // Honour a copy hint when the source's register can be taken over:
      // either it is already free, or the source interval ends exactly at
      // this copy (the move reads it before the destination is written).
      if (auto hint = hints_.find(iv.vreg); hint != hints_.end()) {
        auto assigned = assignment_.find(hint->second);
        if (assigned != assignment_.end()) {
          const RegId wanted = assigned->second;
          auto in_free = std::find(free.begin(), free.end(), wanted);
          if (in_free != free.end()) {
            free.erase(in_free);
            assignment_[iv.vreg] = wanted;
            active.push_back({iv, wanted});
            continue;
          }
          auto in_active = std::find_if(
              active.begin(), active.end(), [&](const Active& a) {
                return a.phys == wanted && a.interval.vreg == hint->second &&
                       a.interval.end == iv.start;
              });
          if (in_active != active.end()) {
            active.erase(in_active);
            assignment_[iv.vreg] = wanted;
            active.push_back({iv, wanted});
            continue;
          }
        }
      }
      if (!free.empty()) {
        const RegId phys = free.back();
        free.pop_back();
        assignment_[iv.vreg] = phys;
        active.push_back({iv, phys});
        continue;
      }
      // Spill the cheapest value: the lowest use-density interval among
      // the active set and the incoming one (hot loop-carried values have
      // high density and stay in registers).
      auto cheapest = std::min_element(
          active.begin(), active.end(), [](const Active& a, const Active& b) {
            return a.interval.weight() < b.interval.weight();
          });
      if (cheapest != active.end() && cheapest->interval.weight() < iv.weight()) {
        assignment_[iv.vreg] = cheapest->phys;
        spill(cheapest->interval.vreg);
        Active replacement{iv, cheapest->phys};
        *cheapest = replacement;
      } else {
        spill(iv.vreg);
      }
    }
  }

  void spill(RegId vreg) {
    assignment_.erase(vreg);
    mf_.frame.size += 8;
    spill_slot_[vreg] = mf_.frame.size;
    ++stats_.spilled;
  }

  /// XMM registers are caller-saved (as in the SysV ABI): an allocated
  /// double that is live across a call gets saved to a frame slot before
  /// the call and restored after it. GPRs are callee-saved and cross calls
  /// freely.
  void plan_caller_saves(const LivenessResult& live) {
    std::vector<std::size_t> call_positions;
    for (std::size_t b = 0; b < mf_.blocks.size(); ++b)
      for (std::size_t i = 0; i < mf_.blocks[b].insts.size(); ++i)
        if (mf_.blocks[b].insts[i].op == Op::Call)
          call_positions.push_back(live.block_start_position[b] + i);
    if (call_positions.empty()) return;

    for (const LiveInterval& iv : live.intervals) {
      if (!x86::is_xmm_class(iv.vreg) || !iv.crosses_call) continue;
      auto phys = assignment_.find(iv.vreg);
      if (phys == assignment_.end()) continue;  // spilled anyway
      std::uint64_t slot = 0;
      for (std::size_t cp : call_positions) {
        if (!(iv.start < cp && cp < iv.end)) continue;
        if (slot == 0) {
          mf_.frame.size += 8;
          slot = mf_.frame.size;
        }
        caller_saves_[cp].push_back({phys->second, slot});
      }
    }
  }

  // -- rewrite ---------------------------------------------------------------

  /// A scratch register known to currently hold a spill slot's value (the
  /// rewrite-time reload cache: repeated uses of a spilled value in
  /// straight-line code reuse the scratch instead of reloading).
  std::map<RegId, std::int64_t> scratch_holds_;

  void invalidate_scratch_cache() { scratch_holds_.clear(); }

  RegId resolve(RegId r, std::vector<Inst>& before, std::vector<Inst>& after,
                bool is_read, bool is_written,
                std::map<RegId, RegId>& scratch_map, unsigned& next_gpr_scratch,
                unsigned& next_xmm_scratch) {
    if (!x86::is_virtual(r)) return r;
    auto phys = assignment_.find(r);
    if (phys != assignment_.end()) return phys->second;

    const bool xmm = x86::is_xmm_class(r);
    const std::int64_t disp =
        -static_cast<std::int64_t>(spill_slot_.at(r));

    auto existing = scratch_map.find(r);
    RegId scratch;
    bool cache_hit = false;
    if (existing != scratch_map.end()) {
      scratch = existing->second;
    } else {
      // Reuse a scratch that already holds this slot, if it is not
      // claimed by another operand of this instruction.
      for (const auto& [s, held] : scratch_holds_) {
        if (held != disp || x86::is_xmm_class(s) != xmm) continue;
        const bool taken = std::any_of(
            scratch_map.begin(), scratch_map.end(),
            [&](const auto& kv) { return kv.second == s; });
        if (!taken) {
          scratch = s;
          cache_hit = true;
          break;
        }
      }
      if (!cache_hit) {
        // Rotate to a scratch not already claimed this instruction.
        auto pick = [&](const RegId* pool, std::size_t n,
                        unsigned& next) -> RegId {
          while (next < n) {
            const RegId cand = pool[next++];
            const bool taken = std::any_of(
                scratch_map.begin(), scratch_map.end(),
                [&](const auto& kv) { return kv.second == cand; });
            if (!taken) return cand;
          }
          throw std::logic_error("regalloc: out of scratch registers");
        };
        scratch = xmm ? pick(kXmmScratch, std::size(kXmmScratch),
                             next_xmm_scratch)
                      : pick(kGprScratch, std::size(kGprScratch),
                             next_gpr_scratch);
      }
      scratch_map[r] = scratch;
    }

    x86::MemOperand slot;
    slot.base = x86::RBP;
    slot.disp = disp;
    if (is_read && !cache_hit) {
      Inst load;
      load.op = xmm ? Op::MovsdRM : Op::MovRM;
      load.dst = scratch;
      load.mem = slot;
      load.width = 8;
      // Avoid duplicate reloads for the same vreg in one instruction.
      const bool already = std::any_of(
          before.begin(), before.end(),
          [&](const Inst& i) { return i.dst == scratch; });
      if (!already) before.push_back(load);
      ++stats_.spill_loads;
    }
    if (is_written) {
      Inst store;
      store.op = xmm ? Op::MovsdMR : Op::MovMR;
      store.dst = scratch;
      store.mem = slot;
      store.width = 8;
      after.push_back(store);
      ++stats_.spill_stores;
    }
    // After this instruction the scratch holds the slot's current value
    // (reloaded before it, or stored back after it).
    scratch_holds_[scratch] = disp;
    return scratch;
  }

  void rewrite() {
    std::size_t position = 0;  // pre-rewrite numbering (matches liveness)
    for (auto& block : mf_.blocks) {
      std::vector<Inst> out;
      out.reserve(block.insts.size());
      std::size_t new_terminator_begin = block.terminator_begin;
      invalidate_scratch_cache();  // blocks are jump targets
      for (std::size_t idx = 0; idx < block.insts.size(); ++idx, ++position) {
        if (idx == block.terminator_begin) new_terminator_begin = out.size();
        Inst inst = block.insts[idx];

        // Calls may clobber the scratch XMMs (they are caller-saved).
        if (inst.op == Op::Call || inst.op == Op::CallBuiltin)
          invalidate_scratch_cache();

        // Caller-saved XMM traffic around calls.
        if (inst.op == Op::Call) {
          auto cs = caller_saves_.find(position);
          if (cs != caller_saves_.end()) {
            for (const auto& [phys, slot] : cs->second) {
              Inst save;
              save.op = Op::MovsdMR;
              save.dst = phys;
              save.mem.base = x86::RBP;
              save.mem.disp = -static_cast<std::int64_t>(slot);
              out.push_back(save);
            }
            out.push_back(inst);
            for (const auto& [phys, slot] : cs->second) {
              Inst restore;
              restore.op = Op::MovsdRM;
              restore.dst = phys;
              restore.mem.base = x86::RBP;
              restore.mem.disp = -static_cast<std::int64_t>(slot);
              out.push_back(restore);
            }
            continue;
          }
        }
        std::vector<Inst> before, after;
        std::map<RegId, RegId> scratch_map;
        unsigned ng = 0, nx = 0;

        const RegId dest = x86::dest_reg(inst);
        // Destination: read when the op merges (two-address ALU etc.).
        std::vector<RegId> reads;
        x86::collect_reads(inst, reads);
        auto is_read_reg = [&](RegId r) {
          return std::find(reads.begin(), reads.end(), r) != reads.end();
        };

        if (inst.mem.base != x86::kNoReg)
          inst.mem.base = resolve(inst.mem.base, before, after, true, false,
                                  scratch_map, ng, nx);
        if (inst.mem.index != x86::kNoReg)
          inst.mem.index = resolve(inst.mem.index, before, after, true, false,
                                   scratch_map, ng, nx);
        if (inst.src_kind == SrcKind::Reg && inst.src != x86::kNoReg)
          inst.src = resolve(inst.src, before, after, true, false, scratch_map,
                             ng, nx);
        if (inst.dst != x86::kNoReg) {
          const bool written = dest != x86::kNoReg;
          const bool read = is_read_reg(block.insts[idx].dst) || !written;
          inst.dst = resolve(inst.dst, before, after, read, written,
                             scratch_map, ng, nx);
        }

        // Drop no-op moves produced by coalescable copies.
        const bool identity_mov =
            (inst.op == Op::MovRR || inst.op == Op::MovsdRR) &&
            inst.src_kind == SrcKind::Reg && inst.dst == inst.src &&
            before.empty() && after.empty() && (inst.op != Op::MovRR || inst.width == 8);
        out.insert(out.end(), before.begin(), before.end());
        if (!identity_mov) out.push_back(inst);
        out.insert(out.end(), after.begin(), after.end());

        // A program store may alias a spill slot (wild or frame pointers),
        // so cached reloads are stale after it. Our own spill stores
        // (emitted in `after`) keep their scratch<->slot pairing valid.
        if (inst.op == Op::MovMR || inst.op == Op::MovMI ||
            inst.op == Op::MovsdMR || inst.op == Op::Push)
          invalidate_scratch_cache();
      }
      if (block.terminator_begin >= block.insts.size())
        new_terminator_begin = out.size();
      block.insts = std::move(out);
      block.terminator_begin = new_terminator_begin;
    }
  }

  MachineFunction& mf_;
  std::map<RegId, RegId> assignment_;
  std::map<RegId, RegId> hints_;
  std::map<RegId, std::uint64_t> spill_slot_;
  // call position -> (physical xmm, frame slot) pairs to save/restore
  std::map<std::size_t, std::vector<std::pair<RegId, std::uint64_t>>>
      caller_saves_;
  RegAllocStats stats_;
};

}  // namespace

RegAllocStats allocate_registers(x86::MachineFunction& mf) {
  return LinearScan(mf).run();
}

}  // namespace faultlab::backend
