// Phi elimination: lowers the phi-copy schedule produced by instruction
// selection into explicit register moves at the end of predecessor blocks,
// honouring parallel-copy semantics (cycles broken with a temporary).
//
// These moves — and the spills the register allocator later adds when they
// raise pressure — are the assembly-level footprint of IR phi nodes that
// the paper's Table I row 2 describes.
#pragma once

#include "backend/isel.h"

namespace faultlab::backend {

void eliminate_phis(x86::MachineFunction& mf,
                    const std::vector<PhiCopy>& copies);

}  // namespace faultlab::backend
