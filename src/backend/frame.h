// Frame lowering: prologue/epilogue insertion.
//
// Prologue:  push rbp; mov rbp, rsp; sub rsp, frame; push <saved>...
// Epilogue:  pop <saved>...; mov rsp, rbp; pop rbp; ret
//
// Every register the function writes is saved (callee-saves-everything
// convention, see x86/isa.h) — these push/pop pairs are the assembly-only
// instructions of the paper's Table I row 3: they have no IR counterpart,
// so LLFI can never inject into them while PINFI can.
#pragma once

#include "x86/program.h"

namespace faultlab::backend {

void lower_frame(x86::MachineFunction& mf);

}  // namespace faultlab::backend
