// Emission: flattens register-allocated machine functions into an
// executable Program (label/call resolution, data image assembly).
#pragma once

#include <vector>

#include "backend/isel.h"
#include "x86/program.h"

namespace faultlab::backend {

/// `functions` must be ordered by func_ordinal and fully lowered
/// (phi-eliminated, register-allocated, frame-lowered).
x86::Program emit_program(std::vector<x86::MachineFunction> functions,
                          const LoweringContext& ctx);

}  // namespace faultlab::backend
