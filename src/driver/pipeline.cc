#include "driver/pipeline.h"

#include "backend/emit.h"
#include "backend/frame.h"
#include "backend/isel.h"
#include "backend/phi_elim.h"
#include "backend/regalloc.h"
#include "frontend/codegen.h"
#include "ir/dominance.h"
#include "ir/verifier.h"

namespace faultlab::driver {

x86::Program lower_module(ir::Module& module,
                          const machine::GlobalLayout& layout) {
  // Critical-edge splitting mutates the IR; do it for every function first,
  // then normalize block order to reverse postorder (instruction selection
  // requires defs to precede uses in list order) and verify once.
  for (const auto& f : module.functions()) {
    if (f->is_builtin()) continue;
    backend::split_critical_edges(*f);
    ir::DominatorTree dom(*f);
    f->reorder_blocks(dom.reverse_postorder());
  }
  ir::verify_or_throw(module);

  backend::LoweringContext ctx = backend::LoweringContext::build(module, layout);
  std::vector<x86::MachineFunction> lowered;
  for (const auto& f : module.functions()) {
    if (f->is_builtin()) continue;
    backend::IselResult sel = backend::select_instructions(*f, ctx);
    backend::eliminate_phis(sel.mf, sel.phi_copies);
    backend::allocate_registers(sel.mf);
    backend::lower_frame(sel.mf);
    lowered.push_back(std::move(sel.mf));
  }
  return backend::emit_program(std::move(lowered), ctx);
}

CompiledProgram compile(const std::string& source, const std::string& name,
                        const CompileOptions& options) {
  CompiledProgram out;
  out.module_ = mc::compile_to_ir(source, name);
  if (options.optimize) {
    out.opt_stats_ = opt::run_standard_pipeline(*out.module_);
  } else if (options.verify) {
    ir::verify_or_throw(*out.module_);
  }
  out.layout_ = std::make_unique<machine::GlobalLayout>(*out.module_);
  out.program_ = lower_module(*out.module_, *out.layout_);
  return out;
}

vm::RunResult CompiledProgram::run_ir(vm::ExecHook* hook,
                                      const vm::RunLimits& limits) const {
  vm::Interpreter interp(*module_, hook);
  return interp.run("main", limits);
}

x86::SimResult CompiledProgram::run_asm(x86::SimHook* hook,
                                        const x86::SimLimits& limits) const {
  x86::Simulator sim(program_, hook);
  return sim.run(limits);
}

}  // namespace faultlab::driver
