// Pipeline facade — the public entry point of the FaultLab library.
//
// One call takes mini-C source through the whole stack:
//   source --frontend--> IR --optimizer--> SSA IR --backend--> x86 Program
// and hands back both executable forms (the IR module for the VM / LLFI,
// the machine program for the simulator / PINFI) plus compile statistics.
#pragma once

#include <memory>
#include <string>

#include "ir/module.h"
#include "machine/runtime.h"
#include "opt/pass.h"
#include "vm/interpreter.h"
#include "x86/program.h"
#include "x86/simulator.h"

namespace faultlab::driver {

struct CompileOptions {
  bool optimize = true;   ///< run the standard pass pipeline
  bool verify = true;     ///< verify IR after each stage
};

/// A fully compiled program: IR + machine code over the same memory layout.
class CompiledProgram {
 public:
  const ir::Module& module() const noexcept { return *module_; }
  const x86::Program& program() const noexcept { return program_; }
  const opt::PipelineStats& opt_stats() const noexcept { return opt_stats_; }

  /// Runs the IR on the interpreter (golden or hooked).
  vm::RunResult run_ir(vm::ExecHook* hook = nullptr,
                       const vm::RunLimits& limits = {}) const;
  /// Runs the machine code on the simulator (golden or hooked).
  x86::SimResult run_asm(x86::SimHook* hook = nullptr,
                         const x86::SimLimits& limits = {}) const;

 private:
  friend CompiledProgram compile(const std::string&, const std::string&,
                                 const CompileOptions&);
  std::unique_ptr<ir::Module> module_;
  std::unique_ptr<machine::GlobalLayout> layout_;
  x86::Program program_;
  opt::PipelineStats opt_stats_;
};

/// Compiles mini-C source through the full pipeline. Throws
/// mc::CompileError on bad source, std::runtime_error on verifier failures.
CompiledProgram compile(const std::string& source,
                        const std::string& name = "module",
                        const CompileOptions& options = {});

/// Lowers an existing (already optimized, verifier-clean) module to machine
/// code. The module must outlive the returned program.
x86::Program lower_module(ir::Module& module,
                          const machine::GlobalLayout& layout);

}  // namespace faultlab::driver
