// libquantum-mini: quantum computer simulation.
//
// An 8-qubit state vector (256 complex amplitudes) driven through
// Hadamard, controlled-NOT and conditional-phase gates, then Grover
// search iterations. Like the original, the work is dominated by sweeps
// that move amplitude data between state-vector slots — the data-movement
// profile behind the paper's libquantum 'load' observation.
#include "apps/apps.h"

namespace faultlab::apps {

std::string libquantum_source() {
  return R"MC(
// ---- libquantum-mini: 8-qubit state vector + Grover iterations ----

double re[256];
double im[256];
double tre[256];
double tim[256];

int nstates = 256;

int hadamard(int qubit) {
  int mask = 1 << qubit;
  double s = 0.70710678118654752;
  int i;
  for (i = 0; i < nstates; i++) {
    tre[i] = re[i];
    tim[i] = im[i];
  }
  for (i = 0; i < nstates; i++) {
    int partner = i ^ mask;
    if ((i & mask) == 0) {
      re[i] = s * (tre[i] + tre[partner]);
      im[i] = s * (tim[i] + tim[partner]);
    } else {
      re[i] = s * (tre[partner] - tre[i]);
      im[i] = s * (tim[partner] - tim[i]);
    }
  }
  return 0;
}

int cnot(int control, int target) {
  int cmask = 1 << control;
  int tmask = 1 << target;
  int i;
  for (i = 0; i < nstates; i++) {
    if ((i & cmask) != 0 && (i & tmask) == 0) {
      int partner = i | tmask;
      double r = re[i]; double m = im[i];
      re[i] = re[partner]; im[i] = im[partner];
      re[partner] = r; im[partner] = m;
    }
  }
  return 0;
}

// Conditional phase flip of the marked state (the Grover oracle).
int oracle(int marked) {
  re[marked] = 0.0 - re[marked];
  im[marked] = 0.0 - im[marked];
  return 0;
}

// Inversion about the mean (the Grover diffusion operator).
int diffuse() {
  double mean_r = 0.0;
  double mean_i = 0.0;
  int i;
  for (i = 0; i < nstates; i++) {
    mean_r = mean_r + re[i];
    mean_i = mean_i + im[i];
  }
  mean_r = mean_r / (double)nstates;
  mean_i = mean_i / (double)nstates;
  for (i = 0; i < nstates; i++) {
    re[i] = 2.0 * mean_r - re[i];
    im[i] = 2.0 * mean_i - im[i];
  }
  return 0;
}

double probability(int state) {
  return re[state] * re[state] + im[state] * im[state];
}

int main() {
  int i;
  int q;
  for (i = 0; i < nstates; i++) { re[i] = 0.0; im[i] = 0.0; }
  re[0] = 1.0;

  // Uniform superposition.
  for (q = 0; q < 8; q++) hadamard(q);

  // Entangle a few qubit pairs (circuit warm-up, exercises data movement).
  cnot(0, 3);
  cnot(1, 4);
  cnot(2, 5);
  cnot(0, 3);
  cnot(1, 4);
  cnot(2, 5);

  int marked = 151;
  int iter;
  for (iter = 0; iter < 12; iter++) {
    oracle(marked);
    diffuse();
  }

  double p_marked = probability(marked);
  double total = 0.0;
  for (i = 0; i < nstates; i++) total = total + probability(i);

  // Amplitude checksum: quantized so tiny fp noise does not flip output.
  long check = 0;
  for (i = 0; i < nstates; i++) {
    long qre = (long)(re[i] * 1000000.0);
    long qim = (long)(im[i] * 1000000.0);
    check = (check * 31 + qre + qim) & 0xffffffffffffL;
  }

  print_int((long)(p_marked * 1000000.0));
  print_int((long)(total * 1000000.0));
  print_int(check);
  print_int(marked);
  return 0;
}
)MC";
}

}  // namespace faultlab::apps
