// hmmer-mini: profile-HMM sensitive database search.
//
// Integer Viterbi dynamic programming of a 32-state profile HMM (match /
// insert / delete states, position-specific emission and transition
// scores) against a batch of synthetic sequences. DP-table loads dominate,
// as in the original hmmer's P7Viterbi kernel.
#include "apps/apps.h"

namespace faultlab::apps {

std::string hmmer_source() {
  return R"MC(
// ---- hmmer-mini: Viterbi over a 32-state profile HMM ----

int match_emit[640];    // 32 states (+pad) x 20 residues
int insert_emit[20];
int tr_mm[33]; int tr_mi[33]; int tr_md[33];
int tr_im[33]; int tr_ii[33];
int tr_dm[33]; int tr_dd[33];

int vm_row[33]; int vi_row[33]; int vd_row[33];
int vm_prev[33]; int vi_prev[33]; int vd_prev[33];

char seq[96];

long lcg_state = 424242;

int lcg_next() {
  lcg_state = lcg_state * 6364136223846793005L + 1442695040888963407L;
  return (int)((lcg_state >> 33) & 0x7fffffff);
}

int neg_inf() { return -100000000; }

int max2(int a, int b) { if (a > b) return a; return b; }
int max3(int a, int b, int c) { return max2(max2(a, b), c); }

int build_model() {
  int s; int r;
  for (s = 0; s < 32; s++) {
    for (r = 0; r < 20; r++) {
      match_emit[s * 20 + r] = (lcg_next() % 13) - 6;
    }
  }
  for (r = 0; r < 20; r++) insert_emit[r] = -1 - lcg_next() % 2;
  for (s = 0; s <= 32; s++) {
    tr_mm[s] = -(lcg_next() % 3);
    tr_mi[s] = -4 - lcg_next() % 4;
    tr_md[s] = -5 - lcg_next() % 4;
    tr_im[s] = -2 - lcg_next() % 3;
    tr_ii[s] = -3 - lcg_next() % 3;
    tr_dm[s] = -2 - lcg_next() % 3;
    tr_dd[s] = -4 - lcg_next() % 3;
  }
  return 0;
}

int make_sequence(int which, int length) {
  int i;
  // A few sequences are "homologous": biased toward high-scoring residues.
  int biased = (which % 3) == 0;
  for (i = 0; i < length; i++) {
    if (biased && (i % 2) == 0) {
      // Pick the best-scoring residue for the state this position aligns to.
      int state = i % 32;
      int best_r = 0;
      int best = neg_inf();
      int r;
      for (r = 0; r < 20; r++) {
        if (match_emit[state * 20 + r] > best) {
          best = match_emit[state * 20 + r];
          best_r = r;
        }
      }
      seq[i] = (char)best_r;
    } else {
      seq[i] = (char)(lcg_next() % 20);
    }
  }
  return length;
}

// Viterbi score of seq[0..len) against the 32-state profile.
int viterbi(int len) {
  int s; int i;
  for (s = 0; s <= 32; s++) {
    vm_prev[s] = neg_inf();
    vi_prev[s] = neg_inf();
    vd_prev[s] = neg_inf();
  }
  vm_prev[0] = 0;

  int best_final = neg_inf();
  for (i = 0; i < len; i++) {
    int residue = ((int)seq[i]) & 255;
    vm_row[0] = neg_inf(); vi_row[0] = neg_inf(); vd_row[0] = neg_inf();
    for (s = 1; s <= 32; s++) {
      int em = match_emit[(s - 1) * 20 + residue];
      int from_m = vm_prev[s - 1] + tr_mm[s - 1];
      int from_i = vi_prev[s - 1] + tr_im[s - 1];
      int from_d = vd_prev[s - 1] + tr_dm[s - 1];
      vm_row[s] = max3(from_m, from_i, from_d) + em;

      int ie = insert_emit[residue];
      vi_row[s] = max2(vm_prev[s] + tr_mi[s], vi_prev[s] + tr_ii[s]) + ie;

      vd_row[s] = max2(vm_row[s - 1] + tr_md[s - 1],
                       vd_row[s - 1] + tr_dd[s - 1]);
    }
    for (s = 0; s <= 32; s++) {
      vm_prev[s] = vm_row[s];
      vi_prev[s] = vi_row[s];
      vd_prev[s] = vd_row[s];
    }
    if (vm_row[32] > best_final) best_final = vm_row[32];
  }
  return best_final;
}

int main() {
  build_model();
  int nseq = 12;
  int hits = 0;
  long score_sum = 0;
  int best_score = neg_inf();
  int best_seq = -1;
  int k;
  for (k = 0; k < nseq; k++) {
    int len = make_sequence(k, 96);
    int score = viterbi(len);
    score_sum = score_sum + score;
    if (score > 40) hits++;
    if (score > best_score) { best_score = score; best_seq = k; }
  }
  print_int(nseq);
  print_int(hits);
  print_int(best_score);
  print_int(best_seq);
  print_int(score_sum);
  return 0;
}
)MC";
}

}  // namespace faultlab::apps
