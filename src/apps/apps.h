// The six miniature benchmarks (Table II analogues).
//
// Each preserves the computational character of its SPEC / SPLASH-2
// original (see DESIGN.md §5): the dynamic instruction *mix* is what the
// paper's category-level results depend on, so that is what these are
// built to match — scaled to complete in well under a second per run so
// thousands of injection trials are feasible.
#pragma once

#include <string>
#include <vector>

namespace faultlab::apps {

struct Benchmark {
  std::string name;         // bzip2, libquantum, ocean, hmmer, mcf, raytrace
  std::string suite;        // "SPEC-mini" or "SPLASH2-mini"
  std::string description;  // Table II description analogue
  std::string input;        // input characterization
  std::string source;       // mini-C source text
};

/// All six benchmarks in the paper's Table II order.
const std::vector<Benchmark>& all_benchmarks();

/// Lookup by name; throws std::out_of_range for unknown names.
const Benchmark& benchmark(const std::string& name);

// Per-app source accessors (defined in the per-app translation units).
std::string bzip2_source();
std::string libquantum_source();
std::string ocean_source();
std::string hmmer_source();
std::string mcf_source();
std::string raytrace_source();

}  // namespace faultlab::apps
