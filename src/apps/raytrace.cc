// raytrace-mini: renders a three-dimensional scene using ray tracing.
//
// Ray-sphere intersection, Lambertian shading with a point light and
// shadow rays, one reflection bounce, over a small framebuffer.
// Double-precision geometry dominates (SPLASH-2 raytrace's profile);
// struct Sphere (40 bytes) exercises non-power-of-two GEP scaling.
#include "apps/apps.h"

namespace faultlab::apps {

std::string raytrace_source() {
  return R"MC(
// ---- raytrace-mini: sphere scene with shading and shadows ----

struct Sphere {
  double cx; double cy; double cz;
  double radius;
  double albedo;
};

struct Sphere spheres[7];
int nspheres = 7;

double light_x = 5.0;
double light_y = 8.0;
double light_z = -2.0;

int framebuffer[784];  // 28 x 28 quantized intensities

int setup_scene() {
  spheres[0].cx = 0.0;  spheres[0].cy = -100.5; spheres[0].cz = 4.0;
  spheres[0].radius = 100.0; spheres[0].albedo = 0.8;
  spheres[1].cx = 0.0;  spheres[1].cy = 0.0;  spheres[1].cz = 4.0;
  spheres[1].radius = 1.0;  spheres[1].albedo = 0.9;
  spheres[2].cx = -2.1; spheres[2].cy = 0.2;  spheres[2].cz = 5.0;
  spheres[2].radius = 1.2;  spheres[2].albedo = 0.7;
  spheres[3].cx = 2.2;  spheres[3].cy = -0.1; spheres[3].cz = 4.5;
  spheres[3].radius = 0.9;  spheres[3].albedo = 0.6;
  spheres[4].cx = 0.8;  spheres[4].cy = 1.4;  spheres[4].cz = 6.0;
  spheres[4].radius = 0.8;  spheres[4].albedo = 0.95;
  spheres[5].cx = -1.0; spheres[5].cy = 1.0;  spheres[5].cz = 3.2;
  spheres[5].radius = 0.5;  spheres[5].albedo = 0.5;
  spheres[6].cx = 1.4;  spheres[6].cy = 0.7;  spheres[6].cz = 3.0;
  spheres[6].radius = 0.4;  spheres[6].albedo = 0.85;
  return 0;
}

// Nearest intersection of ray (ox,oy,oz)+(dx,dy,dz)*t; returns sphere
// index or -1; writes hit distance through tptr.
int intersect(double ox, double oy, double oz,
              double dx, double dy, double dz, double* tptr) {
  double best_t = 1000000.0;
  int best = -1;
  int i;
  for (i = 0; i < nspheres; i++) {
    double lx = spheres[i].cx - ox;
    double ly = spheres[i].cy - oy;
    double lz = spheres[i].cz - oz;
    double b = lx * dx + ly * dy + lz * dz;
    double c = lx * lx + ly * ly + lz * lz -
               spheres[i].radius * spheres[i].radius;
    double disc = b * b - c;
    if (disc > 0.0) {
      double sq = sqrt(disc);
      double t = b - sq;
      if (t < 0.001) t = b + sq;
      if (t > 0.001 && t < best_t) {
        best_t = t;
        best = i;
      }
    }
  }
  *tptr = best_t;
  return best;
}

// Lambert shading with a shadow ray and one reflective bounce.
double shade(double ox, double oy, double oz,
             double dx, double dy, double dz, int depth) {
  double t = 0.0;
  int hit = intersect(ox, oy, oz, dx, dy, dz, &t);
  if (hit < 0) {
    // Sky gradient.
    double f = 0.5 * (dy + 1.0);
    return 0.1 + 0.2 * f;
  }
  double px = ox + dx * t;
  double py = oy + dy * t;
  double pz = oz + dz * t;
  double nx = (px - spheres[hit].cx) / spheres[hit].radius;
  double ny = (py - spheres[hit].cy) / spheres[hit].radius;
  double nz = (pz - spheres[hit].cz) / spheres[hit].radius;

  double tolight_x = light_x - px;
  double tolight_y = light_y - py;
  double tolight_z = light_z - pz;
  double dist = sqrt(tolight_x * tolight_x + tolight_y * tolight_y +
                     tolight_z * tolight_z);
  tolight_x = tolight_x / dist;
  tolight_y = tolight_y / dist;
  tolight_z = tolight_z / dist;

  double lambert = nx * tolight_x + ny * tolight_y + nz * tolight_z;
  if (lambert < 0.0) lambert = 0.0;

  // Shadow ray.
  double st = 0.0;
  int blocker = intersect(px + nx * 0.001, py + ny * 0.001, pz + nz * 0.001,
                          tolight_x, tolight_y, tolight_z, &st);
  if (blocker >= 0 && st < dist) lambert = lambert * 0.1;

  double color = spheres[hit].albedo * (0.15 + 0.85 * lambert);

  if (depth > 0) {
    double dot = dx * nx + dy * ny + dz * nz;
    double rx = dx - 2.0 * dot * nx;
    double ry = dy - 2.0 * dot * ny;
    double rz = dz - 2.0 * dot * nz;
    double bounce = shade(px + nx * 0.001, py + ny * 0.001, pz + nz * 0.001,
                          rx, ry, rz, depth - 1);
    color = color * 0.8 + bounce * 0.2;
  }
  if (color > 1.0) color = 1.0;
  return color;
}

int main() {
  setup_scene();
  int size = 28;
  int x; int y;
  for (y = 0; y < size; y++) {
    for (x = 0; x < size; x++) {
      // Camera at origin looking +z; simple pinhole projection.
      double u = ((double)x + 0.5) / (double)size * 2.0 - 1.0;
      double v = 1.0 - ((double)y + 0.5) / (double)size * 2.0;
      double dx = u * 0.9;
      double dy = v * 0.9;
      double dz = 1.0;
      double norm = sqrt(dx * dx + dy * dy + dz * dz);
      double c = shade(0.0, 0.0, 0.0, dx / norm, dy / norm, dz / norm, 1);
      framebuffer[y * 28 + x] = (int)(c * 255.0);
    }
  }

  long check = 0;
  long bright = 0;
  int i;
  for (i = 0; i < 784; i++) {
    check = (check * 131 + framebuffer[i]) & 0xffffffffffffL;
    bright = bright + framebuffer[i];
  }
  print_int(check);
  print_int(bright);
  print_int(framebuffer[14 * 28 + 14]);
  print_int(framebuffer[0]);
  return 0;
}
)MC";
}

}  // namespace faultlab::apps
