// bzip2-mini: compression/decompression with round-trip verification.
//
// Pipeline (a compact stand-in for bzip2's RLE + BWT + MTF + Huffman):
// run-length encoding, a move-to-front transform over a 256-entry alphabet
// table, and variable-length bit packing keyed on symbol magnitude. Like
// the original it is dominated by byte-array indexing and table updates —
// the address-computation-heavy profile behind the paper's bzip2
// 'arithmetic' and 'cast' observations.
#include "apps/apps.h"

namespace faultlab::apps {

std::string bzip2_source() {
  return R"MC(
// ---- bzip2-mini: RLE + MTF + bit packing, with verification ----

char input[4096];
char rle[5120];
char mtf[5120];
char packed[6144];
char unpacked[5120];
char unmtf[5120];
char output[4096];
char table[256];
char dtable[256];

long lcg_state = 12345;

int lcg_next() {
  lcg_state = lcg_state * 6364136223846793005L + 1442695040888963407L;
  return (int)((lcg_state >> 33) & 0x7fffffff);
}

// Synthesize compressible data: long runs mixed with small-alphabet text.
int make_input() {
  int pos = 0;
  while (pos < 4096) {
    int mode = lcg_next() % 10;
    if (mode < 4) {
      int run = 3 + lcg_next() % 60;
      char byte = (char)(lcg_next() % 16);
      int i;
      for (i = 0; i < run; i++) {
        if (pos >= 4096) break;
        input[pos] = byte;
        pos++;
      }
    } else {
      int span = 1 + lcg_next() % 12;
      int i;
      for (i = 0; i < span; i++) {
        if (pos >= 4096) break;
        input[pos] = (char)(32 + lcg_next() % 48);
        pos++;
      }
    }
  }
  return pos;
}

// Run-length encode: literal bytes, runs >= 4 become (byte x4, count).
int rle_encode(int n) {
  int out = 0;
  int i = 0;
  while (i < n) {
    char byte = input[i];
    int run = 1;
    while (i + run < n && input[i + run] == byte && run < 255) run++;
    if (run >= 4) {
      rle[out] = byte; rle[out + 1] = byte;
      rle[out + 2] = byte; rle[out + 3] = byte;
      rle[out + 4] = (char)(run - 4);
      out += 5;
      i += run;
    } else {
      int k;
      for (k = 0; k < run; k++) { rle[out] = byte; out++; }
      i += run;
    }
  }
  return out;
}

int rle_decode(int n) {
  int out = 0;
  int i = 0;
  while (i < n) {
    char byte = rle[i];
    if (i + 4 < n && rle[i + 1] == byte && rle[i + 2] == byte &&
        rle[i + 3] == byte) {
      int count = 4 + (unpacked_count_helper(rle[i + 4]));
      int k;
      for (k = 0; k < count; k++) { output[out] = byte; out++; }
      i += 5;
    } else {
      output[out] = byte; out++;
      i++;
    }
  }
  return out;
}

int unpacked_count_helper(char c) {
  int v = (int)c;
  return v & 255;
}

// Move-to-front transform over the encoder table.
int mtf_encode(int n) {
  int i;
  for (i = 0; i < 256; i++) table[i] = (char)i;
  for (i = 0; i < n; i++) {
    int byte = ((int)rle[i]) & 255;
    int j = 0;
    while ((((int)table[j]) & 255) != byte) j++;
    mtf[i] = (char)j;
    while (j > 0) { table[j] = table[j - 1]; j--; }
    table[0] = (char)byte;
  }
  return n;
}

int mtf_decode(int n) {
  int i;
  for (i = 0; i < 256; i++) dtable[i] = (char)i;
  for (i = 0; i < n; i++) {
    int j = ((int)unpacked[i]) & 255;
    char byte = dtable[j];
    unmtf[i] = byte;
    while (j > 0) { dtable[j] = dtable[j - 1]; j--; }
    dtable[0] = byte;
  }
  return n;
}

// Variable-length packing: small MTF codes (the common case) take fewer
// bits. 0 -> '10', 1-15 -> '110'+4 bits, else '111'+8 bits, bitwise I/O.
long bitpos = 0;

int put_bits(int value, int count) {
  int i;
  for (i = count - 1; i >= 0; i--) {
    long bytei = bitpos >> 3;
    int biti = (int)(bitpos & 7);
    int bit = (value >> i) & 1;
    int cur = ((int)packed[bytei]) & 255;
    if (bit != 0) cur = cur | (1 << (7 - biti));
    packed[bytei] = (char)cur;
    bitpos++;
  }
  return 0;
}

int pack(int n) {
  bitpos = 0;
  long k = 0;
  for (k = 0; k < 6144; k++) packed[k] = 0;
  int i;
  for (i = 0; i < n; i++) {
    int v = ((int)mtf[i]) & 255;
    if (v == 0) {
      put_bits(2, 2);
    } else if (v < 16) {
      put_bits(6, 3);
      put_bits(v, 4);
    } else {
      put_bits(7, 3);
      put_bits(v, 8);
    }
  }
  return (int)((bitpos + 7) >> 3);
}

long rdpos = 0;

int get_bits(int count) {
  int value = 0;
  int i;
  for (i = 0; i < count; i++) {
    long bytei = rdpos >> 3;
    int biti = (int)(rdpos & 7);
    int bit = (((int)packed[bytei]) >> (7 - biti)) & 1;
    value = (value << 1) | bit;
    rdpos++;
  }
  return value;
}

int unpack(int n) {
  rdpos = 0;
  int out = 0;
  while (out < n) {
    int b0 = get_bits(1);
    if (b0 == 1) {
      int b1 = get_bits(1);
      if (b1 == 0) {
        unpacked[out] = 0;
      } else {
        int b2 = get_bits(1);
        if (b2 == 0) unpacked[out] = (char)get_bits(4);
        else unpacked[out] = (char)get_bits(8);
      }
    } else {
      unpacked[out] = 0;  // '0' prefix unused by the encoder
    }
    out++;
  }
  return out;
}

long checksum(char* buf, int n) {
  long h = 5381;
  int i;
  for (i = 0; i < n; i++) {
    h = h * 33 + (((int)buf[i]) & 255);
    h = h & 0xffffffffffffL;
  }
  return h;
}

int main() {
  int n = make_input();
  int rle_n = rle_encode(n);
  int mtf_n = mtf_encode(rle_n);
  int packed_n = pack(mtf_n);

  int un_n = unpack(mtf_n);
  mtf_decode(un_n);
  int i;
  for (i = 0; i < un_n; i++) rle[i] = unmtf[i];
  int out_n = rle_decode(un_n);

  int mismatches = 0;
  for (i = 0; i < n; i++) {
    if (output[i] != input[i]) mismatches++;
  }

  print_int(n);
  print_int(rle_n);
  print_int(packed_n);
  print_int(out_n);
  print_int(mismatches);
  print_int(checksum(input, n));
  print_int(checksum(output, out_n));
  return mismatches;
}
)MC";
}

}  // namespace faultlab::apps
