#include "apps/apps.h"

#include <stdexcept>

namespace faultlab::apps {

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> benchmarks = {
      {"bzip2", "SPEC-mini",
       "File compression and decompression (RLE + move-to-front + bit "
       "packing) with round-trip verification",
       "4 KiB synthetic runs-and-text buffer", bzip2_source()},
      {"libquantum", "SPEC-mini",
       "Simulation of a quantum computer: 8-qubit state vector, "
       "Hadamard/CNOT/phase gates, Grover iterations",
       "8 qubits, 12 Grover iterations", libquantum_source()},
      {"ocean", "SPLASH2-mini",
       "Large-scale ocean movement simulation: red-black Gauss-Seidel "
       "relaxation of a 2-D current grid",
       "34x34 grid, 40 sweeps", ocean_source()},
      {"hmmer", "SPEC-mini",
       "Profile-HMM sensitive database search: integer Viterbi dynamic "
       "programming over synthetic sequences",
       "32-state profile, 12 sequences of length 96", hmmer_source()},
      {"mcf", "SPEC-mini",
       "Single-depot vehicle scheduling: successive-shortest-path "
       "min-cost flow on a pointer-linked network",
       "48-node, 170-arc synthetic network", mcf_source()},
      {"raytrace", "SPLASH2-mini",
       "Renders a three-dimensional scene using ray tracing: sphere "
       "intersection, Lambert shading, shadow rays",
       "28x28 image, 7 spheres", raytrace_source()},
  };
  return benchmarks;
}

const Benchmark& benchmark(const std::string& name) {
  for (const Benchmark& b : all_benchmarks())
    if (b.name == name) return b;
  throw std::out_of_range("unknown benchmark: " + name);
}

}  // namespace faultlab::apps
