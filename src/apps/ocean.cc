// ocean-mini: large-scale ocean current simulation.
//
// Red-black Gauss–Seidel relaxation of a 2-D grid with fixed boundary
// currents (the numerically characteristic kernel of SPLASH-2 ocean),
// iterated to a residual tolerance. Floating-point arithmetic dominates.
#include "apps/apps.h"

namespace faultlab::apps {

std::string ocean_source() {
  return R"MC(
// ---- ocean-mini: red-black Gauss-Seidel on a 34x34 grid ----

double grid[1156];   // 34 x 34
double rhs[1156];

int dim = 34;

int at(int r, int c) { return r * 34 + c; }

int init_grid() {
  int r; int c;
  for (r = 0; r < dim; r++) {
    for (c = 0; c < dim; c++) {
      grid[at(r, c)] = 0.0;
      // Eddy-like forcing: alternating sources and sinks.
      double fr = (double)r;
      double fc = (double)c;
      double v = (fr - 16.5) * (fc - 16.5);
      if (v > 64.0) v = 64.0;
      if (v < -64.0) v = -64.0;
      rhs[at(r, c)] = v * 0.001;
    }
  }
  // Boundary currents.
  for (r = 0; r < dim; r++) {
    grid[at(r, 0)] = 1.0;
    grid[at(r, dim - 1)] = -1.0;
  }
  for (c = 0; c < dim; c++) {
    grid[at(0, c)] = 0.5;
    grid[at(dim - 1, c)] = -0.5;
  }
  return 0;
}

// One red-black sweep; returns quantized residual.
double sweep(int parity) {
  double residual = 0.0;
  int r; int c;
  for (r = 1; r < dim - 1; r++) {
    for (c = 1; c < dim - 1; c++) {
      if (((r + c) & 1) != parity) continue;
      double old = grid[at(r, c)];
      double updated = 0.25 * (grid[at(r - 1, c)] + grid[at(r + 1, c)] +
                               grid[at(r, c - 1)] + grid[at(r, c + 1)] -
                               rhs[at(r, c)]);
      grid[at(r, c)] = updated;
      double d = updated - old;
      residual = residual + d * d;
    }
  }
  return residual;
}

int main() {
  init_grid();
  double residual = 0.0;
  double first_residual = 0.0;
  int iter;
  for (iter = 0; iter < 40; iter++) {
    residual = sweep(0) + sweep(1);
    if (iter == 0) first_residual = residual;
  }

  long check = 0;
  int r; int c;
  for (r = 0; r < dim; r++) {
    for (c = 0; c < dim; c++) {
      long q = (long)(grid[at(r, c)] * 100000.0);
      check = (check * 31 + q) & 0xffffffffffffL;
    }
  }

  print_int((long)(first_residual * 1000000000.0));
  print_int((long)(residual * 1000000000.0));
  print_int((long)(grid[at(17, 17)] * 1000000.0));
  print_int(check);
  return 0;
}
)MC";
}

}  // namespace faultlab::apps
