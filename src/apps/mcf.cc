// mcf-mini: single-depot vehicle scheduling as min-cost flow.
//
// Successive shortest paths with Bellman-Ford over a pointer-linked
// residual network (struct Arc / struct NodeInfo with next pointers, as in
// the original's linked arc lists). Pointer chasing and control flow
// dominate; struct field access exercises non-power-of-two GEP scaling.
#include "apps/apps.h"

namespace faultlab::apps {

std::string mcf_source() {
  return R"MC(
// ---- mcf-mini: successive-shortest-path min-cost flow ----

struct Arc {
  int to;
  int capacity;
  int cost;
  int flow;
  struct Arc* rev;     // reverse (residual) arc
  struct Arc* next;    // next arc out of the same node
};

struct NodeInfo {
  struct Arc* first;
  int dist;
  int in_queue;
  struct Arc* pred;
  int pred_from;
};

struct NodeInfo nodes[48];
int queue[4096];

int nnodes = 48;
long lcg_state = 777;

int lcg_next() {
  lcg_state = lcg_state * 6364136223846793005L + 1442695040888963407L;
  return (int)((lcg_state >> 33) & 0x7fffffff);
}

struct Arc* new_arc(int to, int capacity, int cost) {
  struct Arc* a = (struct Arc*)malloc(sizeof(struct Arc));
  a->to = to;
  a->capacity = capacity;
  a->cost = cost;
  a->flow = 0;
  a->rev = (struct Arc*)0;
  a->next = (struct Arc*)0;
  return a;
}

int add_edge(int from, int to, int capacity, int cost) {
  struct Arc* fwd = new_arc(to, capacity, cost);
  struct Arc* bwd = new_arc(from, 0, -cost);
  fwd->rev = bwd;
  bwd->rev = fwd;
  fwd->next = nodes[from].first;
  nodes[from].first = fwd;
  bwd->next = nodes[to].first;
  nodes[to].first = bwd;
  return 0;
}

int build_network() {
  int i;
  for (i = 0; i < nnodes; i++) {
    nodes[i].first = (struct Arc*)0;
    nodes[i].dist = 0;
    nodes[i].in_queue = 0;
    nodes[i].pred = (struct Arc*)0;
    nodes[i].pred_from = -1;
  }
  // Source 0, sink 47. Layered network: depot -> vehicles -> trips -> sink,
  // with synthetic deadhead costs (the mcf structure).
  int v; int t;
  for (v = 1; v <= 15; v++) add_edge(0, v, 2, 0);
  for (v = 1; v <= 15; v++) {
    for (t = 16; t <= 46; t++) {
      if ((lcg_next() % 100) < 35) {
        add_edge(v, t, 1, 1 + lcg_next() % 50);
      }
    }
  }
  for (t = 16; t <= 46; t++) add_edge(t, 47, 1, 0);
  return 0;
}

int inf() { return 1000000000; }

// Bellman-Ford / SPFA shortest path from source in the residual network.
int find_path(int source, int sink) {
  int i;
  for (i = 0; i < nnodes; i++) {
    nodes[i].dist = inf();
    nodes[i].in_queue = 0;
    nodes[i].pred = (struct Arc*)0;
    nodes[i].pred_from = -1;
  }
  nodes[source].dist = 0;
  int head = 0;
  int tail = 0;
  queue[tail] = source;
  tail++;
  nodes[source].in_queue = 1;
  while (head < tail) {
    int u = queue[head];
    head++;
    nodes[u].in_queue = 0;
    struct Arc* a = nodes[u].first;
    while (a != 0) {
      if (a->capacity - a->flow > 0) {
        int nd = nodes[u].dist + a->cost;
        if (nd < nodes[a->to].dist) {
          nodes[a->to].dist = nd;
          nodes[a->to].pred = a;
          nodes[a->to].pred_from = u;
          if (nodes[a->to].in_queue == 0 && tail < 4096) {
            queue[tail] = a->to;
            tail++;
            nodes[a->to].in_queue = 1;
          }
        }
      }
      a = a->next;
    }
  }
  if (nodes[sink].dist >= inf()) return 0;
  return 1;
}

int main() {
  build_network();
  long total_cost = 0;
  int total_flow = 0;
  int augmentations = 0;

  while (find_path(0, 47)) {
    // Find bottleneck along the predecessor chain.
    int bottleneck = inf();
    int u = 47;
    while (u != 0) {
      struct Arc* a = nodes[u].pred;
      int residual = a->capacity - a->flow;
      if (residual < bottleneck) bottleneck = residual;
      u = nodes[u].pred_from;
    }
    // Apply flow.
    u = 47;
    while (u != 0) {
      struct Arc* a = nodes[u].pred;
      a->flow += bottleneck;
      a->rev->flow -= bottleneck;
      total_cost = total_cost + (long)bottleneck * (long)a->cost;
      u = nodes[u].pred_from;
    }
    total_flow += bottleneck;
    augmentations++;
    if (augmentations > 200) break;
  }

  print_int(total_flow);
  print_int(total_cost);
  print_int(augmentations);

  // Flow-conservation audit (prints 0 when the solution is consistent).
  int violations = 0;
  int i;
  for (i = 1; i < nnodes - 1; i++) {
    int balance = 0;
    struct Arc* a = nodes[i].first;
    while (a != 0) {
      balance += a->flow;
      a = a->next;
    }
    if (balance != 0) violations++;
  }
  print_int(violations);
  return 0;
}
)MC";
}

}  // namespace faultlab::apps
