// Pre-decoded micro-op trace for the machine simulator's threaded fast
// path.
//
// A Program's code is already a flat Inst array, so the x86 trace is a
// parallel array (1:1 by instruction index, `rip_index` needs no
// translation) that pre-resolves everything the hot loop would otherwise
// re-derive per instruction: jump/call targets are bounds-validated at
// decode time, call return addresses are pre-computed, and builtin
// signatures are pre-looked-up. A TrapFetch sentinel at index code.size()
// turns the slow loop's fetch-bounds check into a plain dispatch.
//
// As with the VM traces, no fault hook is ever compiled in: the simulator
// enters the fast path only while no hook can observe execution (see
// machine/dispatch.h).
#pragma once

#include <cstdint>
#include <vector>

#include "x86/program.h"

namespace faultlab::x86 {

/// Micro-op inventory, mirroring x86::Op name-for-name and value-for-value
/// (static_asserts in trace.cc pin the correspondence) so decoding is a
/// cast, plus the TrapFetch sentinel. The simulator's computed-goto label
/// table is generated from this same list.
#define FAULTLAB_X86_UOPS_MIRROR(X)                                   \
  X(MovRR) X(MovRI) X(MovRM) X(MovMR) X(MovMI)                        \
  X(MovzxRR) X(MovzxRM) X(MovsxRR) X(MovsxRM)                         \
  X(Lea) X(Push) X(Pop)                                               \
  X(Add) X(Sub) X(Imul) X(And) X(Or) X(Xor) X(Shl) X(Sar) X(Shr)      \
  X(Neg) X(Not) X(Idiv) X(Irem) X(Cmp) X(Test) X(Setcc) X(Cmov)      \
  X(Jmp) X(Jcc) X(Call) X(CallBuiltin) X(Ret)                         \
  X(MovsdRR) X(MovsdRM) X(MovsdMR)                                    \
  X(Addsd) X(Subsd) X(Mulsd) X(Divsd) X(Sqrtsd) X(Ucomisd)           \
  X(Cvtsi2sd) X(Cvttsd2si) X(MovqXR) X(MovqRX)

#define FAULTLAB_X86_UOPS(X) FAULTLAB_X86_UOPS_MIRROR(X) X(TrapFetch)

enum class XOp : std::uint8_t {
#define FAULTLAB_X86_UOP_ENUM(name) name,
  FAULTLAB_X86_UOPS(FAULTLAB_X86_UOP_ENUM)
#undef FAULTLAB_X86_UOP_ENUM
};

/// One pre-decoded instruction slot.
struct XUOp {
  XOp op = XOp::TrapFetch;
  /// Jmp/Jcc/Call: the static target index is inside the code array.
  /// Taking a branch with target_ok false traps InvalidJump, exactly like
  /// the slow path's jump_to.
  bool target_ok = false;
  const Inst* inst = nullptr;
  /// CallBuiltin: pre-resolved signature, or nullptr when the ordinal is
  /// out of range (the slow path then owns the failure).
  const BuiltinSig* sig = nullptr;
  std::size_t target = 0;       ///< pre-validated jump/call target index
  std::uint64_t ret_addr = 0;   ///< Call: simulated address of index + 1
};

/// The decoded program: uops[i] executes code[i]; uops[code.size()] is the
/// TrapFetch sentinel. Built once per Machine on first fast-path entry.
struct XTrace {
  explicit XTrace(const Program& program);
  XTrace(const XTrace&) = delete;
  XTrace& operator=(const XTrace&) = delete;
  ~XTrace();  // folds this trace out of the decoded-blocks gauge

  std::vector<XUOp> uops;
};

}  // namespace faultlab::x86
