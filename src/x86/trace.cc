#include "x86/trace.h"

#include "machine/dispatch.h"

namespace faultlab::x86 {

// XOp mirrors Op value-for-value so decode is a cast; pin every member.
#define FAULTLAB_X86_UOP_CHECK(name)                        \
  static_assert(static_cast<unsigned>(Op::name) ==          \
                    static_cast<unsigned>(XOp::name),       \
                "XOp must mirror Op: " #name);
FAULTLAB_X86_UOPS_MIRROR(FAULTLAB_X86_UOP_CHECK)
#undef FAULTLAB_X86_UOP_CHECK

XTrace::XTrace(const Program& program) {
  uops.resize(program.code.size() + 1);  // sentinel stays TrapFetch
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const Inst& inst = program.code[i];
    XUOp& u = uops[i];
    u.op = static_cast<XOp>(static_cast<std::uint8_t>(inst.op));
    u.inst = &inst;
    switch (inst.op) {
      case Op::Jmp:
      case Op::Jcc:
      case Op::Call:
        u.target = static_cast<std::size_t>(inst.target);
        u.target_ok = inst.target >= 0 &&
                      static_cast<std::size_t>(inst.target) <
                          program.code.size();
        u.ret_addr = Program::address_of_index(i + 1);
        break;
      case Op::CallBuiltin:
        if (inst.target >= 0 &&
            static_cast<std::size_t>(inst.target) < program.builtins.size())
          u.sig = &program.builtins[static_cast<std::size_t>(inst.target)];
        break;
      default:
        break;
    }
  }
  machine::DispatchCounters& counters = machine::dispatch_counters();
  counters.trace_decodes.fetch_add(1, std::memory_order_relaxed);
  counters.decoded_blocks.fetch_add(1, std::memory_order_relaxed);
}

XTrace::~XTrace() {
  machine::dispatch_counters().decoded_blocks.fetch_sub(
      1, std::memory_order_relaxed);
}

}  // namespace faultlab::x86
