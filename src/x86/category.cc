#include "x86/category.h"

namespace faultlab::x86 {

namespace {

bool is_arithmetic(const Inst& inst) {
  switch (inst.op) {
    case Op::Add: case Op::Sub: case Op::Imul: case Op::And: case Op::Or:
    case Op::Xor: case Op::Shl: case Op::Sar: case Op::Shr: case Op::Neg:
    case Op::Not: case Op::Idiv: case Op::Irem:
    case Op::Lea:  // address arithmetic
    case Op::Addsd: case Op::Subsd: case Op::Mulsd: case Op::Divsd:
    case Op::Sqrtsd:
      return true;
    default:
      return false;
  }
}

bool is_cast(const Inst& inst) {
  return inst.op == Op::Cvtsi2sd || inst.op == Op::Cvttsd2si;
}

bool is_compare(const Inst& inst) {
  return inst.op == Op::Cmp || inst.op == Op::Test || inst.op == Op::Ucomisd;
}

bool is_load(const Inst& inst) {
  return inst.op == Op::MovRM || inst.op == Op::MovsdRM;
}

}  // namespace

bool asm_injectable(const Inst& inst, const Inst* next) {
  if (dest_reg(inst) != kNoReg) return true;
  return is_compare(inst) && next != nullptr && next->op == Op::Jcc;
}

bool asm_in_category(const Inst& inst, const Inst* next, Category category) {
  switch (category) {
    case Category::Arithmetic:
      return is_arithmetic(inst);
    case Category::Cast:
      return is_cast(inst);
    case Category::Cmp:
      return is_compare(inst) && next != nullptr && next->op == Op::Jcc;
    case Category::Load:
      return is_load(inst);
    case Category::All:
      return dest_reg(inst) != kNoReg;
  }
  return false;
}

}  // namespace faultlab::x86
