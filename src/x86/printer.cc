#include "x86/printer.h"

#include <sstream>

namespace faultlab::x86 {

namespace {

std::string mem_str(const MemOperand& mem) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  if (mem.has_base()) {
    os << reg_name(mem.base);
    first = false;
  }
  if (mem.has_index()) {
    if (!first) os << " + ";
    os << reg_name(mem.index);
    if (mem.scale != 1) os << "*" << static_cast<int>(mem.scale);
    first = false;
  }
  if (mem.disp != 0 || first) {
    if (!first) os << (mem.disp >= 0 ? " + " : " - ");
    os << "0x" << std::hex << (mem.disp >= 0 ? mem.disp : -mem.disp);
  }
  os << "]";
  return os.str();
}

std::string src_str(const Inst& inst, bool xmm_src) {
  switch (inst.src_kind) {
    case SrcKind::Reg:
      return reg_name(inst.src, xmm_src ? 8 : inst.width);
    case SrcKind::Imm:
      return std::to_string(inst.imm);
    case SrcKind::Mem:
      return mem_str(inst.mem);
    case SrcKind::None:
      return "";
  }
  return "";
}

}  // namespace

std::string to_string(const Inst& inst) {
  std::ostringstream os;
  const unsigned w = inst.width;
  switch (inst.op) {
    case Op::MovRR: case Op::MovRI:
      os << "mov " << reg_name(inst.dst, w) << ", " << src_str(inst, false);
      break;
    case Op::MovRM:
      os << "mov " << reg_name(inst.dst, w) << ", " << mem_str(inst.mem);
      break;
    case Op::MovMR:
      os << "mov " << mem_str(inst.mem) << ", " << reg_name(inst.dst, w);
      break;
    case Op::MovMI:
      os << "mov" << (w == 8 ? " qword " : w == 4 ? " dword " : w == 2 ? " word " : " byte ")
         << mem_str(inst.mem) << ", " << inst.imm;
      break;
    case Op::MovzxRR: case Op::MovsxRR:
      os << op_name(inst.op) << " " << reg_name(inst.dst, 8) << ", "
         << reg_name(inst.src, inst.src_width);
      break;
    case Op::MovzxRM: case Op::MovsxRM:
      os << op_name(inst.op) << " " << reg_name(inst.dst, 8) << ", "
         << (inst.src_width == 1 ? "byte " : inst.src_width == 2 ? "word " : "dword ")
         << mem_str(inst.mem);
      break;
    case Op::Lea:
      os << "lea " << reg_name(inst.dst, 8) << ", " << mem_str(inst.mem);
      break;
    case Op::Push: os << "push " << reg_name(inst.dst, 8); break;
    case Op::Pop: os << "pop " << reg_name(inst.dst, 8); break;
    case Op::Add: case Op::Sub: case Op::Imul: case Op::And: case Op::Or:
    case Op::Xor: case Op::Shl: case Op::Sar: case Op::Shr: case Op::Idiv:
    case Op::Irem: case Op::Cmp: case Op::Test: case Op::Cmov:
      os << op_name(inst.op);
      if (inst.op == Op::Cmov) os << cond_name(inst.cond);
      os << " " << reg_name(inst.dst, w) << ", " << src_str(inst, false);
      break;
    case Op::Neg: case Op::Not:
      os << op_name(inst.op) << " " << reg_name(inst.dst, w);
      break;
    case Op::Setcc:
      os << "set" << cond_name(inst.cond) << " " << reg_name(inst.dst, 1);
      break;
    case Op::Jmp:
      os << "jmp L" << inst.target;
      break;
    case Op::Jcc:
      os << "j" << cond_name(inst.cond) << " L" << inst.target;
      break;
    case Op::Call:
      os << "call F" << inst.target << " (" << inst.arg_slots << " slots)";
      break;
    case Op::CallBuiltin:
      os << "callb B" << inst.target << " (" << inst.arg_slots << " slots)";
      break;
    case Op::Ret:
      os << "ret";
      break;
    case Op::MovsdRR:
      os << "movsd " << reg_name(inst.dst) << ", " << reg_name(inst.src);
      break;
    case Op::MovsdRM:
      os << "movsd " << reg_name(inst.dst) << ", " << mem_str(inst.mem);
      break;
    case Op::MovsdMR:
      os << "movsd " << mem_str(inst.mem) << ", " << reg_name(inst.dst);
      break;
    case Op::Addsd: case Op::Subsd: case Op::Mulsd: case Op::Divsd:
    case Op::Sqrtsd: case Op::Ucomisd:
      os << op_name(inst.op) << " " << reg_name(inst.dst) << ", "
         << src_str(inst, true);
      break;
    case Op::Cvtsi2sd:
      os << "cvtsi2sd " << reg_name(inst.dst) << ", "
         << reg_name(inst.src, inst.src_width);
      break;
    case Op::Cvttsd2si:
      os << "cvttsd2si " << reg_name(inst.dst, w) << ", " << reg_name(inst.src);
      break;
    case Op::MovqXR:
      os << "movq " << reg_name(inst.dst) << ", " << reg_name(inst.src, 8);
      break;
    case Op::MovqRX:
      os << "movq " << reg_name(inst.dst, 8) << ", " << reg_name(inst.src);
      break;
  }
  return os.str();
}

std::string to_string(const MachineFunction& mf) {
  std::ostringstream os;
  os << mf.name << ":\n";
  for (const auto& block : mf.blocks) {
    os << "L" << block.label;
    if (!block.name.empty()) os << " (" << block.name << ")";
    os << ":\n";
    for (const auto& inst : block.insts) os << "  " << to_string(inst) << "\n";
  }
  return os.str();
}

std::string to_string(const Program& program) {
  std::ostringstream os;
  for (const auto& fn : program.functions) {
    os << fn.name << ":  ; entry=" << fn.entry << "\n";
    for (std::size_t i = fn.entry; i < fn.entry + fn.size; ++i)
      os << "  " << i << ": " << to_string(program.code[i]) << "\n";
  }
  return os.str();
}

}  // namespace faultlab::x86
