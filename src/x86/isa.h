// x86-64-flavoured ISA used by the backend and the machine simulator.
//
// The instruction inventory and semantics follow x86-64 where it matters to
// the paper's study: [base + index*scale + disp] addressing, an EFLAGS
// register with CF/PF/ZF/SF/OF at their real bit positions, cmp/test + jcc
// pairs, push/pop/call/ret through simulated stack memory, 32-bit ops
// zero-extending into 64-bit registers, and SSE scalar doubles in 128-bit
// XMM registers (of which double ops use only the low 64 bits — the target
// of PINFI's pruning heuristic).
//
// Documented deviations from real x86 (none affect the studied phenomena):
//  * idiv/irem are two-address pseudos (dst = dst op src) instead of using
//    implicit RDX:RAX, and variable shift counts may come from any register
//    (like BMI2 shlx). This avoids pre-colored registers in the allocator.
//  * fcmp-oeq/one lower to ucomisd plus a fused condition (ZF && !PF);
//    real compilers emit a two-jump sequence for the same flag bits.
//  * The calling convention passes arguments on the stack and treats every
//    register as callee-saved (prologue pushes / epilogue pops each one the
//    function touches); return values travel in RAX / XMM0. This produces
//    the caller/callee save traffic of the paper's Table I row 3
//    explicitly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace faultlab::x86 {

// ---------------------------------------------------------------------------
// Registers

/// General-purpose registers; values < kNumGprs are physical.
using RegId = std::uint32_t;

inline constexpr RegId RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5,
                       RSI = 6, RDI = 7, R8 = 8, R9 = 9, R10 = 10, R11 = 11,
                       R12 = 12, R13 = 13, R14 = 14, R15 = 15;
inline constexpr unsigned kNumGprs = 16;
inline constexpr unsigned kNumXmms = 16;

/// XMM registers use the same RegId space offset by kXmmBase (physical
/// XMMi == kXmmBase + i). Virtual registers start at the bases below and
/// are eliminated by register allocation before emission.
inline constexpr RegId kXmmBase = 32;
inline constexpr RegId kVGprBase = 1u << 10;
inline constexpr RegId kVXmmBase = 1u << 20;
inline constexpr RegId kNoReg = 0xffffffff;

inline bool is_phys_gpr(RegId r) { return r < kNumGprs; }
inline bool is_phys_xmm(RegId r) { return r >= kXmmBase && r < kXmmBase + kNumXmms; }
inline bool is_virtual(RegId r) { return r >= kVGprBase && r != kNoReg; }
inline bool is_gpr_class(RegId r) {
  return is_phys_gpr(r) || (r >= kVGprBase && r < kVXmmBase);
}
inline bool is_xmm_class(RegId r) {
  return is_phys_xmm(r) || r >= kVXmmBase;
}

std::string reg_name(RegId r, unsigned width_bytes = 8);

// ---------------------------------------------------------------------------
// Flags (bit positions as in real RFLAGS)

inline constexpr unsigned kFlagCF = 0;
inline constexpr unsigned kFlagPF = 2;
inline constexpr unsigned kFlagZF = 6;
inline constexpr unsigned kFlagSF = 7;
inline constexpr unsigned kFlagOF = 11;

// ---------------------------------------------------------------------------
// Conditions

enum class Cond : std::uint8_t {
  E, NE, L, LE, G, GE, B, BE, A, AE, P, NP,
  FpEq,  // ZF && !PF   (ordered double equality, fused)
  FpNe,  // !ZF && !PF  (ordered inequality: false when unordered)
};

const char* cond_name(Cond c) noexcept;
/// EFLAGS bit positions this condition reads (PINFI's flag-dependence set).
std::vector<unsigned> cond_flag_bits(Cond c);
/// Evaluates the condition against an RFLAGS value.
bool cond_holds(Cond c, std::uint64_t rflags) noexcept;

// ---------------------------------------------------------------------------
// Memory operands:  [base + index*scale + disp]

struct MemOperand {
  RegId base = kNoReg;   // kNoReg => absolute addressing (globals)
  RegId index = kNoReg;
  std::uint8_t scale = 1;  // 1, 2, 4 or 8
  std::int64_t disp = 0;

  bool has_base() const noexcept { return base != kNoReg; }
  bool has_index() const noexcept { return index != kNoReg; }
};

// ---------------------------------------------------------------------------
// Opcodes

enum class Op : std::uint8_t {
  // Data movement (integer).
  MovRR, MovRI,
  MovRM,   // load: reg <- [mem]
  MovMR,   // store: [mem] <- reg
  MovMI,   // store immediate
  MovzxRR, MovzxRM, MovsxRR, MovsxRM,  // src_width-sized source
  Lea,
  Push, Pop,
  // Integer ALU (two-address: dst = dst op src, src = reg/imm/mem).
  Add, Sub, Imul, And, Or, Xor, Shl, Sar, Shr,
  Neg, Not,                 // one-address
  Idiv, Irem,               // pseudo two-address (see header comment)
  Cmp, Test,                // flags only
  Setcc, Cmov,
  // Control flow.
  Jmp, Jcc, Call, CallBuiltin, Ret,
  // SSE scalar double.
  MovsdRR, MovsdRM, MovsdMR,
  Addsd, Subsd, Mulsd, Divsd,  // two-address on xmm, src = xmm/mem
  Sqrtsd,                      // dst = sqrt(src)
  Ucomisd,                     // flags only, src = xmm/mem
  Cvtsi2sd,  // xmm <- gpr (width-sized signed int)
  Cvttsd2si, // gpr <- xmm (truncating)
  MovqXR,    // xmm <- gpr raw bits
  MovqRX,    // gpr <- xmm raw bits
};

const char* op_name(Op op) noexcept;

enum class SrcKind : std::uint8_t { None, Reg, Imm, Mem };

/// One decoded instruction. The backend builds these with virtual register
/// ids and label-valued jump targets; emission resolves both.
struct Inst {
  Op op{};
  std::uint8_t width = 8;      // operand width in bytes (int ops): 1,2,4,8
  std::uint8_t src_width = 0;  // movzx/movsx/cvtsi2sd source width
  SrcKind src_kind = SrcKind::None;
  Cond cond = Cond::E;

  RegId dst = kNoReg;  // GPR or XMM depending on op
  RegId src = kNoReg;
  MemOperand mem;      // load/store/lea target or memory source
  std::int64_t imm = 0;

  /// Jcc/Jmp: block label before emission, instruction index after.
  /// Call: callee function ordinal before emission, entry index after.
  /// CallBuiltin: builtin ordinal (stable).
  std::int64_t target = -1;

  /// Number of 8-byte argument slots a Call/CallBuiltin consumes; used by
  /// the simulator to locate builtin args at [rsp..].
  std::uint16_t arg_slots = 0;
};

// ---------------------------------------------------------------------------
// Structural queries (used by liveness, the register allocator, the
// categorizer and PINFI's activation tracking).

/// Registers read by the instruction (including address registers).
void collect_reads(const Inst& inst, std::vector<RegId>& out);
/// Register written by the instruction, or kNoReg. (Our ISA has at most one
/// explicit register destination per instruction.)
RegId dest_reg(const Inst& inst) noexcept;
/// True when the destination write fully overwrites the register (width >=
/// 4 for GPRs due to x86 zero-extension; 1/2-byte writes merge).
bool dest_fully_overwrites(const Inst& inst) noexcept;
/// True when the instruction writes EFLAGS.
bool writes_flags(const Inst& inst) noexcept;
/// True when the instruction reads EFLAGS (Jcc/Setcc/Cmov).
bool reads_flags(const Inst& inst) noexcept;

}  // namespace faultlab::x86
