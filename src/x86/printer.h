// Textual disassembly (Intel-ish syntax) for machine functions and emitted
// programs; used by tests and the compiler-explorer example.
#pragma once

#include <string>

#include "x86/program.h"

namespace faultlab::x86 {

std::string to_string(const Inst& inst);
std::string to_string(const MachineFunction& mf);
std::string to_string(const Program& program);

}  // namespace faultlab::x86
