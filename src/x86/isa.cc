#include "x86/isa.h"

namespace faultlab::x86 {

std::string reg_name(RegId r, unsigned width_bytes) {
  static const char* q[] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                            "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                            "r12", "r13", "r14", "r15"};
  static const char* d[] = {"eax", "ecx", "edx", "ebx", "esp", "ebp",
                            "esi", "edi", "r8d", "r9d", "r10d", "r11d",
                            "r12d", "r13d", "r14d", "r15d"};
  if (is_phys_gpr(r)) return width_bytes >= 8 ? q[r] : d[r];
  if (is_phys_xmm(r)) return "xmm" + std::to_string(r - kXmmBase);
  if (r == kNoReg) return "<none>";
  if (is_xmm_class(r)) return "vx" + std::to_string(r - kVXmmBase);
  return "v" + std::to_string(r - kVGprBase);
}

const char* cond_name(Cond c) noexcept {
  switch (c) {
    case Cond::E: return "e";
    case Cond::NE: return "ne";
    case Cond::L: return "l";
    case Cond::LE: return "le";
    case Cond::G: return "g";
    case Cond::GE: return "ge";
    case Cond::B: return "b";
    case Cond::BE: return "be";
    case Cond::A: return "a";
    case Cond::AE: return "ae";
    case Cond::P: return "p";
    case Cond::NP: return "np";
    case Cond::FpEq: return "fpeq";
    case Cond::FpNe: return "fpne";
  }
  return "?";
}

std::vector<unsigned> cond_flag_bits(Cond c) {
  switch (c) {
    case Cond::E:
    case Cond::NE:
      return {kFlagZF};
    case Cond::L:
    case Cond::GE:
      return {kFlagSF, kFlagOF};
    case Cond::LE:
    case Cond::G:
      return {kFlagZF, kFlagSF, kFlagOF};
    case Cond::B:
    case Cond::AE:
      return {kFlagCF};
    case Cond::BE:
    case Cond::A:
      return {kFlagCF, kFlagZF};
    case Cond::P:
    case Cond::NP:
      return {kFlagPF};
    case Cond::FpEq:
    case Cond::FpNe:
      return {kFlagZF, kFlagPF};
  }
  return {};
}

bool cond_holds(Cond c, std::uint64_t f) noexcept {
  const bool cf = (f >> kFlagCF) & 1;
  const bool pf = (f >> kFlagPF) & 1;
  const bool zf = (f >> kFlagZF) & 1;
  const bool sf = (f >> kFlagSF) & 1;
  const bool of = (f >> kFlagOF) & 1;
  switch (c) {
    case Cond::E: return zf;
    case Cond::NE: return !zf;
    case Cond::L: return sf != of;
    case Cond::LE: return zf || sf != of;
    case Cond::G: return !zf && sf == of;
    case Cond::GE: return sf == of;
    case Cond::B: return cf;
    case Cond::BE: return cf || zf;
    case Cond::A: return !cf && !zf;
    case Cond::AE: return !cf;
    case Cond::P: return pf;
    case Cond::NP: return !pf;
    case Cond::FpEq: return zf && !pf;
    // Ordered not-equal: false when unordered (NaN sets ZF and PF).
    case Cond::FpNe: return !zf && !pf;
  }
  return false;
}

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::MovRR: case Op::MovRI: case Op::MovRM: case Op::MovMR:
    case Op::MovMI:
      return "mov";
    case Op::MovzxRR: case Op::MovzxRM: return "movzx";
    case Op::MovsxRR: case Op::MovsxRM: return "movsx";
    case Op::Lea: return "lea";
    case Op::Push: return "push";
    case Op::Pop: return "pop";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Imul: return "imul";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Shl: return "shl";
    case Op::Sar: return "sar";
    case Op::Shr: return "shr";
    case Op::Neg: return "neg";
    case Op::Not: return "not";
    case Op::Idiv: return "idiv";
    case Op::Irem: return "irem";
    case Op::Cmp: return "cmp";
    case Op::Test: return "test";
    case Op::Setcc: return "set";
    case Op::Cmov: return "cmov";
    case Op::Jmp: return "jmp";
    case Op::Jcc: return "j";
    case Op::Call: return "call";
    case Op::CallBuiltin: return "callb";
    case Op::Ret: return "ret";
    case Op::MovsdRR: case Op::MovsdRM: case Op::MovsdMR: return "movsd";
    case Op::Addsd: return "addsd";
    case Op::Subsd: return "subsd";
    case Op::Mulsd: return "mulsd";
    case Op::Divsd: return "divsd";
    case Op::Sqrtsd: return "sqrtsd";
    case Op::Ucomisd: return "ucomisd";
    case Op::Cvtsi2sd: return "cvtsi2sd";
    case Op::Cvttsd2si: return "cvttsd2si";
    case Op::MovqXR: case Op::MovqRX: return "movq";
  }
  return "?";
}

namespace {
void add_mem_regs(const MemOperand& mem, std::vector<RegId>& out) {
  if (mem.has_base()) out.push_back(mem.base);
  if (mem.has_index()) out.push_back(mem.index);
}
}  // namespace

void collect_reads(const Inst& inst, std::vector<RegId>& out) {
  // Memory-source / memory-destination address registers.
  if (inst.src_kind == SrcKind::Mem || inst.op == Op::MovMR ||
      inst.op == Op::MovMI || inst.op == Op::MovRM || inst.op == Op::MovsdRM ||
      inst.op == Op::MovsdMR || inst.op == Op::MovzxRM ||
      inst.op == Op::MovsxRM || inst.op == Op::Lea)
    add_mem_regs(inst.mem, out);
  if (inst.src_kind == SrcKind::Reg && inst.src != kNoReg)
    out.push_back(inst.src);

  switch (inst.op) {
    // Two-address ALU reads its destination.
    case Op::Add: case Op::Sub: case Op::Imul: case Op::And: case Op::Or:
    case Op::Xor: case Op::Shl: case Op::Sar: case Op::Shr:
    case Op::Idiv: case Op::Irem:
    case Op::Addsd: case Op::Subsd: case Op::Mulsd: case Op::Divsd:
    case Op::Neg: case Op::Not:
    case Op::Cmov:  // conditional merge keeps old dst
      if (inst.dst != kNoReg) out.push_back(inst.dst);
      break;
    case Op::Cmp: case Op::Test: case Op::Ucomisd:
      if (inst.dst != kNoReg) out.push_back(inst.dst);  // lhs operand
      break;
    case Op::Push: case Op::MovMR: case Op::MovsdMR:
      if (inst.dst != kNoReg) out.push_back(inst.dst);  // stored value
      break;
    case Op::Pop:
      break;
    default:
      break;
  }
}

RegId dest_reg(const Inst& inst) noexcept {
  switch (inst.op) {
    case Op::MovMR: case Op::MovMI: case Op::MovsdMR:  // stores
    case Op::Cmp: case Op::Test: case Op::Ucomisd:     // flags only
    case Op::Push: case Op::Jmp: case Op::Jcc: case Op::Call:
    case Op::CallBuiltin: case Op::Ret:
      return kNoReg;
    default:
      return inst.dst;
  }
}

bool dest_fully_overwrites(const Inst& inst) noexcept {
  const RegId d = dest_reg(inst);
  if (d == kNoReg) return false;
  if (is_xmm_class(d)) return true;  // movsd/arith write the low lane we track
  switch (inst.op) {
    case Op::Setcc:
      return false;  // writes one byte
    case Op::MovzxRR: case Op::MovzxRM: case Op::MovsxRR: case Op::MovsxRM:
      return true;   // always extend to full width
    default:
      return inst.width >= 4;  // 32/64-bit ops zero-extend; 8/16-bit merge
  }
}

bool writes_flags(const Inst& inst) noexcept {
  switch (inst.op) {
    case Op::Add: case Op::Sub: case Op::Imul: case Op::And: case Op::Or:
    case Op::Xor: case Op::Shl: case Op::Sar: case Op::Shr: case Op::Neg:
    case Op::Idiv: case Op::Irem:
    case Op::Cmp: case Op::Test: case Op::Ucomisd:
      return true;
    default:
      return false;
  }
}

bool reads_flags(const Inst& inst) noexcept {
  return inst.op == Op::Jcc || inst.op == Op::Setcc || inst.op == Op::Cmov;
}

}  // namespace faultlab::x86
