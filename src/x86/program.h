// Machine program containers.
//
// The backend builds MachineFunctions (blocks of Insts with virtual
// registers and label-valued jumps); after register allocation and frame
// lowering, emission flattens everything into a Program the simulator
// executes directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "x86/isa.h"

namespace faultlab::x86 {

/// A machine basic block; `label` is referenced by Jmp/Jcc targets.
struct MBlock {
  std::int64_t label = 0;
  std::string name;
  std::vector<Inst> insts;
  /// Index of the first instruction of the terminator sequence (cmp+jcc,
  /// jmp, or ret with its preceding return-value move). Phi copies insert
  /// before this point.
  std::size_t terminator_begin = 0;
};

struct FrameInfo {
  /// Total frame bytes below RBP (allocas + spill slots), 16-aligned.
  std::uint64_t size = 0;
  /// Physical GPRs the function must save/restore (computed post-RA).
  std::vector<RegId> saved_gprs;
};

struct MachineFunction {
  std::string name;
  std::size_t func_ordinal = 0;  // index within the module/program
  std::vector<MBlock> blocks;
  FrameInfo frame;
  RegId next_vgpr = kVGprBase;
  RegId next_vxmm = kVXmmBase;

  RegId fresh_gpr() { return next_vgpr++; }
  RegId fresh_xmm() { return next_vxmm++; }
  MBlock* block_by_label(std::int64_t label);
};

/// Signature info the simulator needs to marshal builtin arguments.
struct BuiltinSig {
  std::string name;
  bool returns_double = false;
  bool returns_value = false;
  std::vector<bool> arg_is_double;
};

struct FunctionInfo {
  std::string name;
  std::size_t entry = 0;  // instruction index of the prologue
  std::size_t size = 0;   // number of instructions
};

/// Flat executable image. `code[i]`'s simulated address is
/// machine::Layout::kCodeBase + 16*i (return addresses on the simulated
/// stack use these addresses, so corrupted return addresses trap
/// realistically).
struct DataSegment {
  std::uint64_t address = 0;
  std::vector<std::uint8_t> bytes;
};

struct Program {
  std::vector<Inst> code;
  std::vector<FunctionInfo> functions;
  std::vector<BuiltinSig> builtins;
  /// Initialized data (the module's globals), materialized at startup.
  std::vector<DataSegment> data;
  std::uint64_t data_size = 0;  // total global region size
  std::size_t entry_index = 0;  // main's prologue

  static std::uint64_t address_of_index(std::size_t index);
  /// Returns the instruction index for a simulated code address, or -1 when
  /// the address is not a valid instruction boundary.
  std::int64_t index_of_address(std::uint64_t address) const;

  const FunctionInfo* function_by_name(const std::string& name) const;
};

}  // namespace faultlab::x86
