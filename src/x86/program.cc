#include "x86/program.h"

#include "machine/memory.h"

namespace faultlab::x86 {

MBlock* MachineFunction::block_by_label(std::int64_t label) {
  for (auto& b : blocks)
    if (b.label == label) return &b;
  return nullptr;
}

std::uint64_t Program::address_of_index(std::size_t index) {
  return machine::Layout::kCodeBase + 16 * static_cast<std::uint64_t>(index);
}

std::int64_t Program::index_of_address(std::uint64_t address) const {
  if (address < machine::Layout::kCodeBase) return -1;
  const std::uint64_t offset = address - machine::Layout::kCodeBase;
  if (offset % 16 != 0) return -1;
  const std::uint64_t index = offset / 16;
  if (index >= code.size()) return -1;
  return static_cast<std::int64_t>(index);
}

const FunctionInfo* Program::function_by_name(const std::string& name) const {
  for (const auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

}  // namespace faultlab::x86
