// Machine simulator for the x86-flavoured ISA — the "hardware + PIN" that
// PINFI instruments. Executes a Program against the shared memory model,
// with a hook interface that can observe every dynamic instruction and
// mutate machine state after an instruction retires (fault injection).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "machine/memory.h"
#include "machine/runtime.h"
#include "x86/program.h"

namespace faultlab::x86 {

/// Full architectural state, exposed to hooks so injectors can flip bits in
/// destination registers, XMM lanes, or EFLAGS.
struct MachineState {
  std::uint64_t gpr[kNumGprs] = {};
  std::uint64_t xmm[kNumXmms][2] = {};  // [0] = low 64 bits, [1] = high
  std::uint64_t rflags = 0;
  std::uint64_t rip_index = 0;  // instruction index, not byte address
};

class SimHook {
 public:
  virtual ~SimHook() = default;
  /// True once the hook has nothing left to observe right now. The
  /// simulator checks this at instruction boundaries; when `rearm_at()` is
  /// zero it drops the hook for the rest of the run (the transient fast
  /// path), so an injection hook done tracking activation stops taxing
  /// every remaining instruction with virtual calls. With a nonzero
  /// `rearm_at()` the hook merely goes dormant: callbacks are suppressed
  /// until the executed-instruction count reaches the re-arm point, then
  /// the simulator calls `rearm()` and resumes delivery. The hook object
  /// stays alive and queryable either way.
  bool detached() const noexcept { return detached_; }
  /// Absolute executed-instruction count at which a dormant hook wants
  /// callbacks again; zero means detachment is final.
  std::uint64_t rearm_at() const noexcept { return rearm_at_; }
  /// Reactivates a dormant hook. Called by the simulator when the re-arm
  /// point is reached; not for subclass use.
  void rearm() noexcept {
    detached_ = false;
    rearm_at_ = 0;
  }
  /// Called before executing instruction `code[index]`.
  virtual void on_before(std::size_t index, const Inst& inst) {
    (void)index;
    (void)inst;
  }
  /// Called between on_before and execution for each memory access the
  /// instruction is about to make, with the exact effective address
  /// computed from pre-execution register state. Covers explicit memory
  /// operands (loads, stores) and the implicit stack accesses of
  /// push/pop/call/ret; builtin-call argument reads are not reported.
  virtual void on_memory(std::size_t index, const Inst& inst,
                         std::uint64_t address, unsigned size,
                         bool is_store) {
    (void)index;
    (void)inst;
    (void)address;
    (void)size;
    (void)is_store;
  }
  /// Called after the instruction retires; the hook may mutate `state`
  /// (this is where PINFI's bit flips land).
  virtual void on_after(std::size_t index, const Inst& inst,
                        MachineState& state) {
    (void)index;
    (void)inst;
    (void)state;
  }

 protected:
  /// For subclasses whose instrumentation completes mid-run. Passing a
  /// nonzero `rearm_at` requests dormancy instead of final detachment:
  /// the simulator suppresses callbacks until that many instructions have
  /// executed (absolute count, including any restored prefix), then
  /// re-arms the hook. Time-triggered and persistent fault models use
  /// this to sleep through uninteresting stretches without giving up the
  /// hook pointer.
  void detach(std::uint64_t rearm_at = 0) noexcept {
    detached_ = true;
    rearm_at_ = rearm_at;
  }

 private:
  bool detached_ = false;
  std::uint64_t rearm_at_ = 0;
};

/// Resumable machine state captured between two retired instructions:
/// architectural registers plus copy-on-write memory and runtime state.
/// `executed == n` means the snapshot resumes exactly before dynamic
/// instruction n+1. Any simulator over the same program can run_from() it,
/// including several concurrently (each gets its own copy-on-write view).
struct SimSnapshot {
  MachineState state;
  std::uint64_t executed = 0;
  machine::Memory::Snapshot memory;
  machine::Runtime::State runtime;
};

struct SimLimits {
  /// Budget on *total* dynamic instructions, including any golden prefix a
  /// resumed run skipped: run_from() keeps counting from the snapshot's
  /// `executed`, so a restored trial times out exactly where a full run
  /// would.
  std::uint64_t max_instructions = 400'000'000;
  /// When nonzero, capture a SimSnapshot every `snapshot_stride` retired
  /// instructions and hand it to `snapshot_sink`.
  std::uint64_t snapshot_stride = 0;
  std::function<void(SimSnapshot&&)> snapshot_sink;
};

struct SimResult {
  bool trapped = false;
  machine::TrapKind trap = machine::TrapKind::UnmappedAccess;
  /// Static location of the trap when `trapped`: the instruction index
  /// (rip) that was executing — the same id space as PINFI's static_site.
  /// Zero otherwise.
  std::uint64_t trap_pc = 0;
  /// Faulting address carried by the trap (memory address, divisor site,
  /// or jump target).
  std::uint64_t trap_address = 0;
  bool timed_out = false;
  std::int64_t exit_value = 0;
  std::uint64_t dynamic_instructions = 0;
  std::string output;
  /// Page-table entries rewritten by run_from()'s restore, and whether it
  /// took the O(dirty) delta path (checkpoint observability; both 0/false
  /// for run()).
  std::uint64_t restored_pages = 0;
  bool delta_restored = false;

  bool completed() const noexcept { return !trapped && !timed_out; }
};

class Machine;

class Simulator {
 public:
  explicit Simulator(const Program& program, SimHook* hook = nullptr);
  ~Simulator();
  // The resident machine (machine_) holds references into this object;
  // moving or copying would leave them dangling.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Swaps the instrumentation hook for subsequent runs. A resident
  /// simulator serves many trials, each with its own injection hook.
  void set_hook(SimHook* hook) noexcept { hook_ = hook; }

  /// Runs the program's entry function to completion on a fresh machine
  /// image.
  SimResult run(const SimLimits& limits = {});

  /// Resumes execution from `snapshot` (captured on this program) and runs
  /// to completion. `dynamic_instructions` and `output` report whole-run
  /// totals including the skipped prefix, so outcome classification matches
  /// a from-scratch run.
  ///
  /// The machine is resident: it persists across calls, so resuming the
  /// same snapshot repeatedly rides Memory::restore_delta()'s O(pages the
  /// previous trial touched) path instead of rebuilding the page table.
  SimResult run_from(const SimSnapshot& snapshot, const SimLimits& limits = {});

  /// Resumes `count` simulators (lanes) from the same snapshot and runs
  /// them to completion in lockstep: one decoded micro-op fetch drives
  /// every active lane, and a lane whose fault diverges control flow
  /// (branch target, trap, or halt differs from the pack leader) masks off
  /// and finishes on the existing single-lane path. results[i] is
  /// byte-identical to what `lanes[i]->run_from(snapshot, limits)` would
  /// produce — the pack only amortizes fetch/dispatch, never semantics.
  /// Falls back to sequential run_from calls when packing cannot apply
  /// (one lane, switch dispatch mode, a snapshot sink armed, mismatched
  /// programs, or more than machine::kMaxLanes lanes).
  static void run_lockstep(Simulator* const* lanes, std::size_t count,
                           const SimSnapshot& snapshot,
                           const SimLimits& limits, SimResult* results);

 private:
  const Program& program_;
  SimHook* hook_;
  std::unique_ptr<Machine> machine_;  // lazily created, reused across runs
};

}  // namespace faultlab::x86
