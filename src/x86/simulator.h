// Machine simulator for the x86-flavoured ISA — the "hardware + PIN" that
// PINFI instruments. Executes a Program against the shared memory model,
// with a hook interface that can observe every dynamic instruction and
// mutate machine state after an instruction retires (fault injection).
#pragma once

#include <cstdint>
#include <string>

#include "machine/memory.h"
#include "machine/runtime.h"
#include "x86/program.h"

namespace faultlab::x86 {

/// Full architectural state, exposed to hooks so injectors can flip bits in
/// destination registers, XMM lanes, or EFLAGS.
struct MachineState {
  std::uint64_t gpr[kNumGprs] = {};
  std::uint64_t xmm[kNumXmms][2] = {};  // [0] = low 64 bits, [1] = high
  std::uint64_t rflags = 0;
  std::uint64_t rip_index = 0;  // instruction index, not byte address
};

class SimHook {
 public:
  virtual ~SimHook() = default;
  /// Called before executing instruction `code[index]`.
  virtual void on_before(std::size_t index, const Inst& inst) {
    (void)index;
    (void)inst;
  }
  /// Called after the instruction retires; the hook may mutate `state`
  /// (this is where PINFI's bit flips land).
  virtual void on_after(std::size_t index, const Inst& inst,
                        MachineState& state) {
    (void)index;
    (void)inst;
    (void)state;
  }
};

struct SimLimits {
  std::uint64_t max_instructions = 400'000'000;
};

struct SimResult {
  bool trapped = false;
  machine::TrapKind trap = machine::TrapKind::UnmappedAccess;
  bool timed_out = false;
  std::int64_t exit_value = 0;
  std::uint64_t dynamic_instructions = 0;
  std::string output;

  bool completed() const noexcept { return !trapped && !timed_out; }
};

class Simulator {
 public:
  explicit Simulator(const Program& program, SimHook* hook = nullptr);

  /// Runs the program's entry function to completion on a fresh machine.
  SimResult run(const SimLimits& limits = {});

 private:
  const Program& program_;
  SimHook* hook_;
};

}  // namespace faultlab::x86
