// PINFI's instruction categories (paper Table III, assembly side).
//
//   arithmetic — ALU and SSE arithmetic ops, including lea and the
//                add/imul chains that implement address computation (this
//                is why PINFI counts *more* arithmetic than LLFI: GEPs
//                lower to these).
//   cast       — the 'convert' category: cvtsi2sd / cvttsd2si (movsx/movzx
//                are data transfer in XED terms and are NOT casts here,
//                which is why PINFI sees far fewer casts than LLFI).
//   cmp        — cmp/test/ucomisd whose *next executed instruction* is a
//                conditional branch (the paper's selection criterion).
//   load       — mov with memory source and register destination (movsd
//                loads included).
//   all        — every instruction with a register destination.
#pragma once

#include "ir/category.h"  // reuse the Category enum (names match Table III)
#include "x86/isa.h"

namespace faultlab::x86 {

using ir::Category;

/// True when `inst` belongs to `category`. `next` is the following
/// instruction in program order (null at function end) — needed for the
/// 'cmp' category's next-is-conditional-branch rule.
bool asm_in_category(const Inst& inst, const Inst* next, Category category);

/// True when the instruction can be a PINFI injection target at all:
/// either it has a register destination, or it is a flag-writing compare
/// followed by a conditional branch (injected via its dependent flag bits).
bool asm_injectable(const Inst& inst, const Inst* next);

}  // namespace faultlab::x86
