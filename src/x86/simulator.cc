#include "x86/simulator.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "machine/dispatch.h"
#include "obs/metrics.h"
#include "support/bitutil.h"
#include "x86/trace.h"

// Computed-goto threaded dispatch for the fast path; define
// FAULTLAB_NO_COMPUTED_GOTO (or build with a compiler lacking the
// extension) to fall back to a portable switch with identical semantics.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(FAULTLAB_NO_COMPUTED_GOTO)
#define FAULTLAB_X86_COMPUTED_GOTO 1
#else
#define FAULTLAB_X86_COMPUTED_GOTO 0
#endif

namespace faultlab::x86 {

namespace {

/// Instructions actually executed per run()/run_from() call (the delta, not
/// the snapshot-primed absolute count), log2-bucketed in the global
/// registry. One handle lookup per process; one branch when disabled.
void record_run_instructions(std::uint64_t delta) {
  if (!obs::metrics_enabled()) return;
  static obs::Histogram histogram =
      obs::Registry::global().histogram("x86.run_instructions");
  histogram.record(delta);
}

using machine::Layout;
using machine::TrapException;
using machine::TrapKind;

/// Sentinel return address pushed under main(); ret-ing to it halts.
constexpr std::uint64_t kHaltAddress = 0x0DEAD'0000'0000ull;

struct Flags {
  static std::uint64_t parity(std::uint64_t result) {
    return (__builtin_popcountll(result & 0xff) % 2 == 0) ? 1 : 0;
  }
};

}  // namespace

// Resident execution state behind Simulator: memory, runtime, and
// architectural registers persist across runs so consecutive run_from()
// calls of the same snapshot stay on Memory's delta-restore path.
class Machine {
 public:
  explicit Machine(const Program& program)
      : program_(program), runtime_(memory_) {}

  /// Arms the per-run parameters (the state itself is resident).
  void prepare(SimHook* hook, const SimLimits& limits) {
    hook_ = hook;
    limits_ = limits;
    next_snapshot_at_ = 0;
    mode_ = machine::dispatch_mode();
  }

  SimResult run() {
    // Fresh image: releasing the mappings also disarms delta tracking, so
    // a later run_from() knows to fall back to a full restore.
    memory_.reset();
    runtime_.reset();
    state_ = MachineState{};
    executed_ = 0;
    // Materialize the data image and stack.
    memory_.map_range(Layout::kGlobalBase,
                      std::max<std::uint64_t>(program_.data_size, 1));
    for (const auto& seg : program_.data)
      if (!seg.bytes.empty())
        memory_.write_bytes(seg.address, seg.bytes.data(), seg.bytes.size());
    memory_.map_range(Layout::kStackLimit, Layout::kStackSize);

    state_.gpr[RSP] = Layout::kStackTop - 64;  // small red zone below top
    push(kHaltAddress);
    state_.rip_index = program_.entry_index;
    return drive();
  }

  SimResult run_from(const SimSnapshot& snapshot) {
    const machine::Memory::RestoreStats restore = restore_from(snapshot);
    SimResult result = drive();
    result.restored_pages = restore.pages;
    result.delta_restored = restore.delta;
    return result;
  }

  /// Rewinds the resident machine to `snapshot` without driving it; the
  /// lockstep pack restores every lane first, then runs them together.
  machine::Memory::RestoreStats restore_from(const SimSnapshot& snapshot) {
    const machine::Memory::RestoreStats restore =
        memory_.restore_delta(snapshot.memory);
    runtime_.restore(snapshot.runtime);
    state_ = snapshot.state;
    executed_ = snapshot.executed;
    return restore;
  }

  /// Runs `count` prepared + restored machines in lockstep. All lanes must
  /// share one program, identical limits with no snapshot sink, and the
  /// exact restore point results from restore_from(snapshot). results[i]
  /// gets precisely what lanes[i] would have produced via drive().
  static void pack_run(Machine* const* lanes, std::size_t count,
                       SimResult* results);

 private:
  SimResult drive() {
    if (limits_.snapshot_stride != 0)
      next_snapshot_at_ = executed_ + limits_.snapshot_stride;
    return resume_finish();
  }

  /// Runs this lane to completion on the single-lane path and packages the
  /// outcome: drive()'s historical body, reused verbatim by lanes that
  /// leave a lockstep pack mid-trial.
  SimResult resume_finish() {
    try {
      loop();
      return halt_fill();
    } catch (const TrapException& trap) {
      return trap_fill(trap);
    } catch (const machine::TimeoutException&) {
      return timeout_fill();
    }
  }

  SimResult halt_fill() {
    SimResult result;
    result.exit_value =
        static_cast<std::int64_t>(static_cast<std::int32_t>(state_.gpr[RAX]));
    result.dynamic_instructions = executed_;
    result.output = runtime_.output();
    return result;
  }

  SimResult trap_fill(const TrapException& trap) {
    SimResult result;
    result.trapped = true;
    result.trap = trap.kind();
    result.trap_address = trap.address();
    // rip_index advances before execute(), so the faulting instruction's
    // index is tracked separately (the fetch-bounds trap at the top of
    // the loop also lands on the bad rip it recorded there).
    result.trap_pc = current_index_;
    result.dynamic_instructions = executed_;
    result.output = runtime_.output();
    return result;
  }

  SimResult timeout_fill() {
    SimResult result;
    result.timed_out = true;
    result.dynamic_instructions = executed_;
    result.output = runtime_.output();
    return result;
  }

  void maybe_snapshot() {
    if (next_snapshot_at_ == 0 || executed_ < next_snapshot_at_ ||
        !limits_.snapshot_sink)
      return;
    SimSnapshot snap;
    snap.state = state_;
    snap.executed = executed_;
    snap.memory = memory_.snapshot();
    snap.runtime = runtime_.save();
    next_snapshot_at_ = executed_ + limits_.snapshot_stride;
    limits_.snapshot_sink(std::move(snap));
  }

  [[noreturn]] void trap(TrapKind kind, std::uint64_t addr,
                         const char* detail = "") {
    throw TrapException(kind, addr, detail);
  }

  // -- register access --------------------------------------------------

  std::uint64_t gpr(RegId r, unsigned width) const {
    assert(is_phys_gpr(r));
    return truncate(state_.gpr[r], width * 8);
  }

  void set_gpr(RegId r, unsigned width, std::uint64_t value) {
    assert(is_phys_gpr(r));
    switch (width) {
      case 8: state_.gpr[r] = value; break;
      case 4: state_.gpr[r] = value & 0xffffffffull; break;  // zero-extends
      case 2: state_.gpr[r] = (state_.gpr[r] & ~0xffffull) | (value & 0xffff); break;
      case 1: state_.gpr[r] = (state_.gpr[r] & ~0xffull) | (value & 0xff); break;
      default: assert(false);
    }
  }

  std::uint64_t& xmm_lo(RegId r) {
    assert(is_phys_xmm(r));
    return state_.xmm[r - kXmmBase][0];
  }
  std::uint64_t& xmm_hi(RegId r) {
    assert(is_phys_xmm(r));
    return state_.xmm[r - kXmmBase][1];
  }

  // -- memory ------------------------------------------------------------

  std::uint64_t effective_address(const MemOperand& mem) const {
    std::uint64_t addr = static_cast<std::uint64_t>(mem.disp);
    if (mem.has_base()) addr += state_.gpr[mem.base];
    if (mem.has_index()) addr += state_.gpr[mem.index] * mem.scale;
    return addr;
  }

  std::uint64_t load(const MemOperand& mem, unsigned width) {
    const std::uint64_t addr = effective_address(mem);
    guard_data_address(addr);
    return memory_.read(addr, width);
  }

  void store(const MemOperand& mem, unsigned width, std::uint64_t value) {
    const std::uint64_t addr = effective_address(mem);
    guard_data_address(addr);
    memory_.write(addr, width, value);
  }

  /// Data accesses into the code region trap (W^X).
  void guard_data_address(std::uint64_t addr) {
    if (addr >= Layout::kCodeBase)
      trap(TrapKind::UnmappedAccess, addr, "code region");
  }

  void push(std::uint64_t value) {
    state_.gpr[RSP] -= 8;
    memory_.write(state_.gpr[RSP], 8, value);
  }

  std::uint64_t pop() {
    const std::uint64_t v = memory_.read(state_.gpr[RSP], 8);
    state_.gpr[RSP] += 8;
    return v;
  }

  // -- flags ---------------------------------------------------------------

  void set_result_flags(std::uint64_t result, unsigned width, bool cf,
                        bool of) {
    const unsigned bits = width * 8;
    const std::uint64_t masked = truncate(result, bits);
    std::uint64_t f = 0;
    if (cf) f |= 1ull << kFlagCF;
    f |= Flags::parity(masked) << kFlagPF;
    if (masked == 0) f |= 1ull << kFlagZF;
    if ((masked >> (bits - 1)) & 1) f |= 1ull << kFlagSF;
    if (of) f |= 1ull << kFlagOF;
    state_.rflags = f;
  }

  void flags_add(std::uint64_t a, std::uint64_t b, unsigned width) {
    const unsigned bits = width * 8;
    const std::uint64_t mask = low_mask(bits);
    const std::uint64_t r = (a + b) & mask;
    const bool cf = r < (a & mask);
    const std::uint64_t sign = 1ull << (bits - 1);
    const bool of = (~(a ^ b) & (a ^ r) & sign) != 0;
    set_result_flags(r, width, cf, of);
  }

  void flags_sub(std::uint64_t a, std::uint64_t b, unsigned width) {
    const unsigned bits = width * 8;
    const std::uint64_t mask = low_mask(bits);
    const std::uint64_t r = (a - b) & mask;
    const bool cf = (a & mask) < (b & mask);
    const std::uint64_t sign = 1ull << (bits - 1);
    const bool of = ((a ^ b) & (a ^ r) & sign) != 0;
    set_result_flags(r, width, cf, of);
  }

  void flags_logic(std::uint64_t result, unsigned width) {
    set_result_flags(result, width, false, false);
  }

  // -- source operand ------------------------------------------------------

  std::uint64_t int_src(const Inst& inst) {
    switch (inst.src_kind) {
      case SrcKind::Reg: return gpr(inst.src, inst.width);
      case SrcKind::Imm: return truncate(static_cast<std::uint64_t>(inst.imm),
                                         inst.width * 8);
      case SrcKind::Mem: return load(inst.mem, inst.width);
      case SrcKind::None: break;
    }
    assert(false && "integer instruction without source");
    return 0;
  }

  double fp_src(const Inst& inst) {
    switch (inst.src_kind) {
      case SrcKind::Reg: return double_of(xmm_lo(inst.src));
      case SrcKind::Mem: return double_of(load(inst.mem, 8));
      default: break;
    }
    assert(false && "fp instruction without source");
    return 0.0;
  }

  // -- main loop -------------------------------------------------------------

  /// Runs to the halt sentinel. Switch mode is the pure historical loop;
  /// threaded mode alternates trace execution with single hooked slow
  /// steps at window boundaries.
  void loop() {
    if (mode_ == machine::DispatchMode::Switch) {
      while (!slow_step()) {
      }
      return;
    }
    while (true) {
      std::uint64_t stop = limits_.max_instructions;
      if (fast_eligible(&stop) && fast_run(stop)) return;
      if (slow_step()) return;
    }
  }

  /// Whether the fast path may run right now, and — via `stop` — up to
  /// which dynamic-instruction count (see vm/interpreter.cc for the full
  /// boundary derivation; the slow loop's per-instruction checks all fire
  /// at positions known in advance, so one slow step at each boundary
  /// reproduces the throw / re-arm / snapshot exactly).
  bool fast_eligible(std::uint64_t* stop) {
    if (hook_ != nullptr) {
      if (!hook_->detached()) return false;
      const std::uint64_t at = hook_->rearm_at();
      if (at == 0) {
        hook_ = nullptr;  // finally detached: same nulling as the slow loop
      } else {
        *stop = std::min(*stop, at - 1);
      }
    }
    if (next_snapshot_at_ != 0 && limits_.snapshot_sink)
      *stop = std::min(*stop, next_snapshot_at_);
    return executed_ < *stop;
  }

  /// One iteration of the hooked slow path; true when the program halted.
  bool slow_step() {
    maybe_snapshot();
    // trap_pc source: rip advances before execute(), so the faulting
    // instruction's index is tracked here. For the fetch-bounds trap the
    // recorded pc is the bad rip itself.
    current_index_ = state_.rip_index;
    if (state_.rip_index >= program_.code.size())
      trap(TrapKind::InvalidJump, Program::address_of_index(state_.rip_index));
    const std::size_t index = state_.rip_index;
    const Inst& inst = program_.code[index];
    if (++executed_ > limits_.max_instructions)
      throw machine::TimeoutException();
    if (hook_ != nullptr && hook_->detached()) {
      const std::uint64_t at = hook_->rearm_at();
      if (at == 0) {
        hook_ = nullptr;  // rest of the run executes at unhooked speed
      } else if (executed_ >= at) {
        hook_->rearm();  // dormant hook reached its re-arm point
      }
    }
    // Dormant hooks (detached with a future rearm_at) see neither
    // callback this instruction. A hook that detaches inside on_before
    // still gets on_after for the same instruction, as before.
    SimHook* live = hook_ != nullptr && !hook_->detached() ? hook_ : nullptr;
    if (live != nullptr) {
      live->on_before(index, inst);
      deliver_memory(live, index, inst);
    }

    state_.rip_index = index + 1;  // default fallthrough
    const bool halted = execute(inst);
    if (live != nullptr) live->on_after(index, inst, state_);
    return halted;
  }

  /// Reports the instruction's memory accesses to a live hook before it
  /// executes. Effective addresses come from pre-execution register state
  /// (execute() recomputes them identically), so the report is exact.
  /// Builtin calls read their arguments from the stack without a report —
  /// the only accesses this callback does not see.
  void deliver_memory(SimHook* live, std::size_t index, const Inst& inst) {
    switch (inst.op) {
      case Op::MovMR: case Op::MovMI:
        live->on_memory(index, inst, effective_address(inst.mem), inst.width,
                        /*is_store=*/true);
        return;
      case Op::MovsdMR:
        live->on_memory(index, inst, effective_address(inst.mem), 8,
                        /*is_store=*/true);
        return;
      case Op::Push: case Op::Call:
        live->on_memory(index, inst, state_.gpr[RSP] - 8, 8,
                        /*is_store=*/true);
        return;
      case Op::Pop: case Op::Ret:
        live->on_memory(index, inst, state_.gpr[RSP], 8, /*is_store=*/false);
        return;
      case Op::Lea:
        return;  // address computation only, no access
      default:
        break;
    }
    if (inst.src_kind != SrcKind::Mem) return;
    unsigned size = inst.width;
    switch (inst.op) {
      case Op::MovzxRM: case Op::MovsxRM:
        size = inst.src_width;
        break;
      case Op::MovsdRM: case Op::Addsd: case Op::Subsd: case Op::Mulsd:
      case Op::Divsd: case Op::Sqrtsd: case Op::Ucomisd:
        size = 8;
        break;
      default:
        break;
    }
    live->on_memory(index, inst, effective_address(inst.mem), size,
                    /*is_store=*/false);
  }

  /// Executes pre-decoded uops until `stop` (a dynamic-instruction
  /// count), a state only the slow path handles, or the halt sentinel
  /// (returns true). Side exits re-sync rip so the slow loop resumes at
  /// exactly the state a pure slow run would have; traps re-sync
  /// current_index_ so trap PCs stay exact.
  bool fast_run(std::uint64_t stop) {
    if (trace_ == nullptr) trace_ = std::make_unique<XTrace>(program_);
    machine::DispatchCounters& dc = machine::dispatch_counters();
    std::size_t ip = state_.rip_index;
    if (ip > program_.code.size()) {
      // Wild resume state: beyond even the fetch sentinel.
      dc.trace_invalidations.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    dc.trace_hits.fetch_add(1, std::memory_order_relaxed);
    const XUOp* const uops = trace_->uops.data();
    try {
      const XUOp* u = nullptr;

#if FAULTLAB_X86_COMPUTED_GOTO
#define FAULTLAB_X86_UOP_LABEL(name) &&x86_lbl_##name,
      static const void* const kLabels[] = {
          FAULTLAB_X86_UOPS(FAULTLAB_X86_UOP_LABEL)};
#undef FAULTLAB_X86_UOP_LABEL
#define X86_OP(name) x86_lbl_##name:
#define X86_NEXT()                                     \
  do {                                                 \
    if (executed_ >= stop) goto x86_side_exit;         \
    u = uops + ip;                                     \
    ++executed_;                                       \
    goto* kLabels[static_cast<unsigned>(u->op)];       \
  } while (0)
      X86_NEXT();
#else
#define X86_OP(name) case XOp::name:
#define X86_NEXT() goto x86_dispatch
    x86_dispatch:
      if (executed_ >= stop) goto x86_side_exit;
      u = uops + ip;
      ++executed_;
      switch (u->op) {
#endif

      X86_OP(MovRR) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, inst.width, gpr(inst.src, inst.width));
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovRI) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, inst.width, static_cast<std::uint64_t>(inst.imm));
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovRM) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, inst.width, load(inst.mem, inst.width));
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovMR) {
        const Inst& inst = *u->inst;
        store(inst.mem, inst.width, gpr(inst.dst, inst.width));
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovMI) {
        const Inst& inst = *u->inst;
        store(inst.mem, inst.width, static_cast<std::uint64_t>(inst.imm));
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovzxRR) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, 8, gpr(inst.src, inst.src_width));
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovzxRM) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, 8, load(inst.mem, inst.src_width));
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovsxRR) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, 8,
                static_cast<std::uint64_t>(sign_extend(
                    gpr(inst.src, inst.src_width), inst.src_width * 8)));
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovsxRM) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, 8,
                static_cast<std::uint64_t>(sign_extend(
                    load(inst.mem, inst.src_width), inst.src_width * 8)));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Lea) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, 8, effective_address(inst.mem));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Push) {
        push(state_.gpr[u->inst->dst]);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Pop) {
        set_gpr(u->inst->dst, 8, pop());
        ++ip;
        X86_NEXT();
      }
      X86_OP(Add) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const std::uint64_t a = gpr(inst.dst, w), b = int_src(inst);
        flags_add(a, b, w);
        set_gpr(inst.dst, w, a + b);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Sub) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const std::uint64_t a = gpr(inst.dst, w), b = int_src(inst);
        flags_sub(a, b, w);
        set_gpr(inst.dst, w, a - b);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Imul) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const unsigned bits = w * 8;
        const std::int64_t a = sign_extend(gpr(inst.dst, w), bits);
        const std::int64_t b = sign_extend(int_src(inst), bits);
        const __int128 wide = static_cast<__int128>(a) * b;
        const std::uint64_t r =
            truncate(static_cast<std::uint64_t>(wide), bits);
        const bool overflow = wide != sign_extend(r, bits);
        set_result_flags(r, w, overflow, overflow);
        set_gpr(inst.dst, w, r);
        ++ip;
        X86_NEXT();
      }
      X86_OP(And) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const std::uint64_t r = gpr(inst.dst, w) & int_src(inst);
        flags_logic(r, w);
        set_gpr(inst.dst, w, r);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Or) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const std::uint64_t r = gpr(inst.dst, w) | int_src(inst);
        flags_logic(r, w);
        set_gpr(inst.dst, w, r);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Xor) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const std::uint64_t r = gpr(inst.dst, w) ^ int_src(inst);
        flags_logic(r, w);
        set_gpr(inst.dst, w, r);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Shl) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const unsigned bits = w * 8;
        const std::uint64_t a = gpr(inst.dst, w);
        const unsigned count = static_cast<unsigned>(
            int_src(inst) & (bits >= 64 ? 63 : 31));
        const std::uint64_t r = truncate(a << count, bits);
        bool cf = false;
        if (count > 0 && count <= bits) cf = (a >> (bits - count)) & 1;
        set_result_flags(r, w, cf, false);
        set_gpr(inst.dst, w, r);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Sar) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const unsigned bits = w * 8;
        const std::uint64_t a = gpr(inst.dst, w);
        const unsigned count = static_cast<unsigned>(
            int_src(inst) & (bits >= 64 ? 63 : 31));
        const std::uint64_t r = truncate(
            static_cast<std::uint64_t>(sign_extend(a, bits) >> count), bits);
        bool cf = false;
        if (count > 0) cf = (sign_extend(a, bits) >> (count - 1)) & 1;
        set_result_flags(r, w, cf, false);
        set_gpr(inst.dst, w, r);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Shr) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const unsigned bits = w * 8;
        const std::uint64_t a = gpr(inst.dst, w);
        const unsigned count = static_cast<unsigned>(
            int_src(inst) & (bits >= 64 ? 63 : 31));
        const std::uint64_t r = truncate(a, bits) >> count;
        bool cf = false;
        if (count > 0) cf = (a >> (count - 1)) & 1;
        set_result_flags(r, w, cf, false);
        set_gpr(inst.dst, w, r);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Neg) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const std::uint64_t a = gpr(inst.dst, w);
        flags_sub(0, a, w);
        set_gpr(inst.dst, w, 0 - a);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Not) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, inst.width, ~gpr(inst.dst, inst.width));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Idiv) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const unsigned bits = w * 8;
        const std::int64_t a = sign_extend(gpr(inst.dst, w), bits);
        const std::int64_t b = sign_extend(int_src(inst), bits);
        if (b == 0) trap(TrapKind::DivideByZero, 0);
        const std::int64_t min =
            bits >= 64 ? std::numeric_limits<std::int64_t>::min()
                       : -(std::int64_t{1} << (bits - 1));
        if (b == -1 && a == min)
          trap(TrapKind::DivideByZero, 0, "division overflow");
        const std::int64_t r = a / b;
        set_result_flags(static_cast<std::uint64_t>(r), w, false, false);
        set_gpr(inst.dst, w, static_cast<std::uint64_t>(r));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Irem) {
        const Inst& inst = *u->inst;
        const unsigned w = inst.width;
        const unsigned bits = w * 8;
        const std::int64_t a = sign_extend(gpr(inst.dst, w), bits);
        const std::int64_t b = sign_extend(int_src(inst), bits);
        if (b == 0) trap(TrapKind::DivideByZero, 0);
        const std::int64_t min =
            bits >= 64 ? std::numeric_limits<std::int64_t>::min()
                       : -(std::int64_t{1} << (bits - 1));
        if (b == -1 && a == min)
          trap(TrapKind::DivideByZero, 0, "division overflow");
        const std::int64_t r = a % b;
        set_result_flags(static_cast<std::uint64_t>(r), w, false, false);
        set_gpr(inst.dst, w, static_cast<std::uint64_t>(r));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Cmp) {
        const Inst& inst = *u->inst;
        flags_sub(gpr(inst.dst, inst.width), int_src(inst), inst.width);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Test) {
        const Inst& inst = *u->inst;
        flags_logic(gpr(inst.dst, inst.width) & int_src(inst), inst.width);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Setcc) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, 1, cond_holds(inst.cond, state_.rflags) ? 1 : 0);
        ++ip;
        X86_NEXT();
      }
      X86_OP(Cmov) {
        const Inst& inst = *u->inst;
        if (cond_holds(inst.cond, state_.rflags))
          set_gpr(inst.dst, inst.width, int_src(inst));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Jmp) {
        if (!u->target_ok)
          trap(TrapKind::InvalidJump, Program::address_of_index(u->target));
        ip = u->target;
        X86_NEXT();
      }
      X86_OP(Jcc) {
        if (cond_holds(u->inst->cond, state_.rflags)) {
          if (!u->target_ok)
            trap(TrapKind::InvalidJump, Program::address_of_index(u->target));
          ip = u->target;
        } else {
          ++ip;
        }
        X86_NEXT();
      }
      X86_OP(Call) {
        // Push before validating, like the slow path's rip-then-jump_to.
        push(u->ret_addr);
        if (!u->target_ok)
          trap(TrapKind::InvalidJump, Program::address_of_index(u->target));
        ip = u->target;
        X86_NEXT();
      }
      X86_OP(CallBuiltin) {
        const Inst& inst = *u->inst;
        if (u->sig == nullptr) goto x86_side_exit;  // slow path owns failure
        // Inner scope: an indirect goto (X86_NEXT) skips destructors, so
        // the argument vector must die before the dispatch jump.
        {
          std::vector<std::uint64_t> args(inst.arg_slots);
          for (std::uint16_t i = 0; i < inst.arg_slots; ++i)
            args[i] = memory_.read(state_.gpr[RSP] + 8ull * i, 8);
          const std::uint64_t r = runtime_.call_builtin(u->sig->name, args);
          if (u->sig->returns_value) {
            if (u->sig->returns_double) {
              xmm_lo(kXmmBase + 0) = r;
              xmm_hi(kXmmBase + 0) = 0;
            } else {
              state_.gpr[RAX] = r;
            }
          }
        }
        ++ip;
        X86_NEXT();
      }
      X86_OP(Ret) {
        const std::uint64_t addr = pop();
        if (addr == kHaltAddress) return true;
        const std::int64_t index = program_.index_of_address(addr);
        if (index < 0) trap(TrapKind::InvalidJump, addr);
        ip = static_cast<std::size_t>(index);
        X86_NEXT();
      }
      X86_OP(MovsdRR) {
        xmm_lo(u->inst->dst) = xmm_lo(u->inst->src);  // merges: high kept
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovsdRM) {
        const Inst& inst = *u->inst;
        xmm_lo(inst.dst) = load(inst.mem, 8);
        xmm_hi(inst.dst) = 0;  // movsd xmm, m64 zeroes the upper lane
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovsdMR) {
        const Inst& inst = *u->inst;
        store(inst.mem, 8, xmm_lo(inst.dst));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Addsd) {
        const Inst& inst = *u->inst;
        xmm_lo(inst.dst) =
            bits_of(double_of(xmm_lo(inst.dst)) + fp_src(inst));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Subsd) {
        const Inst& inst = *u->inst;
        xmm_lo(inst.dst) =
            bits_of(double_of(xmm_lo(inst.dst)) - fp_src(inst));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Mulsd) {
        const Inst& inst = *u->inst;
        xmm_lo(inst.dst) =
            bits_of(double_of(xmm_lo(inst.dst)) * fp_src(inst));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Divsd) {
        const Inst& inst = *u->inst;
        xmm_lo(inst.dst) =
            bits_of(double_of(xmm_lo(inst.dst)) / fp_src(inst));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Sqrtsd) {
        const Inst& inst = *u->inst;
        xmm_lo(inst.dst) = bits_of(std::sqrt(fp_src(inst)));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Ucomisd) {
        const Inst& inst = *u->inst;
        const double a = double_of(xmm_lo(inst.dst));
        const double b = fp_src(inst);
        std::uint64_t f = 0;
        if (std::isnan(a) || std::isnan(b)) {
          f = (1ull << kFlagZF) | (1ull << kFlagPF) | (1ull << kFlagCF);
        } else if (a == b) {
          f = 1ull << kFlagZF;
        } else if (a < b) {
          f = 1ull << kFlagCF;
        }
        state_.rflags = f;
        ++ip;
        X86_NEXT();
      }
      X86_OP(Cvtsi2sd) {
        const Inst& inst = *u->inst;
        const std::int64_t v = sign_extend(gpr(inst.src, inst.src_width),
                                           inst.src_width * 8);
        xmm_lo(inst.dst) = bits_of(static_cast<double>(v));
        ++ip;
        X86_NEXT();
      }
      X86_OP(Cvttsd2si) {
        const Inst& inst = *u->inst;
        const double d = fp_src(inst);
        std::int64_t out;
        if (std::isnan(d) || d >= 9.2233720368547758e18 ||
            d < -9.2233720368547758e18)
          out = std::numeric_limits<std::int64_t>::min();
        else
          out = static_cast<std::int64_t>(d);
        set_gpr(inst.dst, inst.width, static_cast<std::uint64_t>(out));
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovqXR) {
        const Inst& inst = *u->inst;
        xmm_lo(inst.dst) = state_.gpr[inst.src];
        xmm_hi(inst.dst) = 0;
        ++ip;
        X86_NEXT();
      }
      X86_OP(MovqRX) {
        const Inst& inst = *u->inst;
        set_gpr(inst.dst, 8, xmm_lo(inst.src));
        ++ip;
        X86_NEXT();
      }
      X86_OP(TrapFetch) {
        // The slow loop's fetch-bounds check traps before counting the
        // instruction; undo this dispatch's bump to match.
        --executed_;
        trap(TrapKind::InvalidJump, Program::address_of_index(ip));
      }

#if !FAULTLAB_X86_COMPUTED_GOTO
        default:
          goto x86_side_exit;
      }
#endif
#undef X86_OP
#undef X86_NEXT

    x86_side_exit:
      state_.rip_index = ip;
      dc.trace_invalidations.fetch_add(1, std::memory_order_relaxed);
      return false;
    } catch (...) {
      // current_index_ is the slow loop's trap-pc source; point it at the
      // op that threw so drive() reports the same PC either way.
      current_index_ = ip;
      throw;
    }
  }

  // -- lockstep lane pack ------------------------------------------------
  //
  // All active lanes of a pack share one position (rip) and one executed-
  // instruction count: they were restored from the same snapshot and step
  // together. The pack fast loop fetches each micro-op once and applies
  // its body to every lane; armed windows take pack_slow_step (each lane's
  // own hooked slow_step, with full callback semantics), and any lane
  // whose control flow leaves the leader's path is masked off and finishes
  // alone on the historical single-lane path.

  /// Drops lanes flagged in `dead` from the active set.
  static void pack_compact(std::vector<Machine*>& act,
                           std::vector<std::size_t>& slot, const char* dead) {
    std::size_t out = 0;
    for (std::size_t j = 0; j < act.size(); ++j) {
      if (dead[j]) continue;
      act[out] = act[j];
      slot[out] = slot[j];
      ++out;
    }
    act.resize(out);
    slot.resize(out);
  }

  /// Masks off every running lane whose rip differs from the leader's and
  /// finishes it solo. `base` is the shared snapshot's executed count (for
  /// the divergence-offset histogram).
  static void pack_resolve(std::vector<Machine*>& act,
                           std::vector<std::size_t>& slot, SimResult* results,
                           std::uint64_t base) {
    if (act.size() <= 1) return;
    const std::uint64_t lead_rip = act[0]->state_.rip_index;
    char dead[machine::kMaxLanes] = {};
    std::uint64_t masked = 0;
    for (std::size_t j = 1; j < act.size(); ++j) {
      Machine& m = *act[j];
      if (m.state_.rip_index == lead_rip) continue;
      machine::record_pack_divergence_offset(m.executed_ - base);
      results[slot[j]] = m.resume_finish();
      dead[j] = 1;
      ++masked;
    }
    if (masked == 0) return;
    machine::pack_counters().divergences.fetch_add(masked,
                                                   std::memory_order_relaxed);
    pack_compact(act, slot, dead);
  }

  /// fast_eligible across the pack: every lane's hook must be gone or
  /// dormant, and the nearest re-arm point clamps the shared stop.
  static bool pack_fast_eligible(std::vector<Machine*>& act,
                                 std::uint64_t* stop) {
    for (Machine* m : act) {
      if (m->hook_ == nullptr) continue;
      if (!m->hook_->detached()) return false;
      const std::uint64_t at = m->hook_->rearm_at();
      if (at == 0)
        m->hook_ = nullptr;  // finally detached: same nulling as slow loop
      else
        *stop = std::min(*stop, at - 1);
    }
    // pack_run never engages with a snapshot sink armed, so the
    // next_snapshot_at_ clamp from the single-lane path is moot here.
    return act[0]->executed_ < *stop;
  }

  /// One hooked slow step per active lane (boundary instructions: re-arm
  /// points, injection windows, timeouts), then a divergence check.
  static void pack_slow_step(std::vector<Machine*>& act,
                             std::vector<std::size_t>& slot,
                             SimResult* results, std::uint64_t base) {
    char dead[machine::kMaxLanes] = {};
    bool any_dead = false;
    for (std::size_t j = 0; j < act.size(); ++j) {
      Machine& m = *act[j];
      try {
        if (m.slow_step()) {
          results[slot[j]] = m.halt_fill();
          dead[j] = 1;
          any_dead = true;
        }
      } catch (const TrapException& trap) {
        results[slot[j]] = m.trap_fill(trap);
        dead[j] = 1;
        any_dead = true;
      } catch (const machine::TimeoutException&) {
        results[slot[j]] = m.timeout_fill();
        dead[j] = 1;
        any_dead = true;
      }
    }
    if (any_dead) pack_compact(act, slot, dead);
    pack_resolve(act, slot, results, base);
  }

  /// The pack fast loop: one fetch + dispatch per micro-op drives every
  /// active lane's body. The shared `executed` count mirrors each lane's
  /// executed_ (written back at every exit). Returns false on a side exit
  /// that needs one slow step (stop boundary, unresolvable builtin), true
  /// when the active set changed (trap, halt, or control divergence) so
  /// the driver re-evaluates eligibility.
  static bool pack_fast_run(std::vector<Machine*>& act,
                            std::vector<std::size_t>& slot, SimResult* results,
                            std::uint64_t stop, std::uint64_t base) {
    Machine& lead = *act[0];
    machine::DispatchCounters& dc = machine::dispatch_counters();
    std::size_t ip = lead.state_.rip_index;
    if (ip > lead.program_.code.size()) {
      // Wild resume state: beyond even the fetch sentinel.
      dc.trace_invalidations.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (lead.trace_ == nullptr)
      lead.trace_ = std::make_unique<XTrace>(lead.program_);
    dc.trace_hits.fetch_add(1, std::memory_order_relaxed);
    const XUOp* const uops = lead.trace_->uops.data();
    const std::size_t nact = act.size();
    std::uint64_t executed = lead.executed_;
    std::uint64_t dispatched = 0;
    const XUOp* u = nullptr;
    std::size_t li = 0;
    const auto sync = [&](Machine& m, std::uint64_t rip) {
      m.executed_ = executed;
      m.state_.rip_index = rip;
    };
    const auto flush = [&]() {
      machine::PackCounters& pc = machine::pack_counters();
      pc.uops.fetch_add(dispatched, std::memory_order_relaxed);
      pc.lane_uops.fetch_add(dispatched * nact, std::memory_order_relaxed);
    };

// Plain (non-control) micro-op: the single-lane fast body with every state
// access routed through lane `m`, applied to each active lane in turn.
#define X86_PACK_CASE(name, ...)    \
  case XOp::name: {                 \
    const Inst& inst = *u->inst;    \
    (void)inst;                     \
    for (li = 0; li != nact; ++li) {\
      Machine& m = *act[li];        \
      __VA_ARGS__                   \
    }                               \
    ++ip;                           \
    break;                          \
  }

    try {
      for (;;) {
        if (executed >= stop) {
          for (std::size_t j = 0; j != nact; ++j) sync(*act[j], ip);
          dc.trace_invalidations.fetch_add(1, std::memory_order_relaxed);
          flush();
          return false;
        }
        u = uops + ip;
        ++executed;
        ++dispatched;
        switch (u->op) {
          X86_PACK_CASE(MovRR, {
            m.set_gpr(inst.dst, inst.width, m.gpr(inst.src, inst.width));
          })
          X86_PACK_CASE(MovRI, {
            m.set_gpr(inst.dst, inst.width,
                      static_cast<std::uint64_t>(inst.imm));
          })
          X86_PACK_CASE(MovRM, {
            m.set_gpr(inst.dst, inst.width, m.load(inst.mem, inst.width));
          })
          X86_PACK_CASE(MovMR, {
            m.store(inst.mem, inst.width, m.gpr(inst.dst, inst.width));
          })
          X86_PACK_CASE(MovMI, {
            m.store(inst.mem, inst.width,
                    static_cast<std::uint64_t>(inst.imm));
          })
          X86_PACK_CASE(MovzxRR, {
            m.set_gpr(inst.dst, 8, m.gpr(inst.src, inst.src_width));
          })
          X86_PACK_CASE(MovzxRM, {
            m.set_gpr(inst.dst, 8, m.load(inst.mem, inst.src_width));
          })
          X86_PACK_CASE(MovsxRR, {
            m.set_gpr(inst.dst, 8,
                      static_cast<std::uint64_t>(sign_extend(
                          m.gpr(inst.src, inst.src_width),
                          inst.src_width * 8)));
          })
          X86_PACK_CASE(MovsxRM, {
            m.set_gpr(inst.dst, 8,
                      static_cast<std::uint64_t>(sign_extend(
                          m.load(inst.mem, inst.src_width),
                          inst.src_width * 8)));
          })
          X86_PACK_CASE(Lea, {
            m.set_gpr(inst.dst, 8, m.effective_address(inst.mem));
          })
          X86_PACK_CASE(Push, { m.push(m.state_.gpr[inst.dst]); })
          X86_PACK_CASE(Pop, { m.set_gpr(inst.dst, 8, m.pop()); })
          X86_PACK_CASE(Add, {
            const unsigned w = inst.width;
            const std::uint64_t a = m.gpr(inst.dst, w), b = m.int_src(inst);
            m.flags_add(a, b, w);
            m.set_gpr(inst.dst, w, a + b);
          })
          X86_PACK_CASE(Sub, {
            const unsigned w = inst.width;
            const std::uint64_t a = m.gpr(inst.dst, w), b = m.int_src(inst);
            m.flags_sub(a, b, w);
            m.set_gpr(inst.dst, w, a - b);
          })
          X86_PACK_CASE(Imul, {
            const unsigned w = inst.width;
            const unsigned bits = w * 8;
            const std::int64_t a = sign_extend(m.gpr(inst.dst, w), bits);
            const std::int64_t b = sign_extend(m.int_src(inst), bits);
            const __int128 wide = static_cast<__int128>(a) * b;
            const std::uint64_t r =
                truncate(static_cast<std::uint64_t>(wide), bits);
            const bool overflow = wide != sign_extend(r, bits);
            m.set_result_flags(r, w, overflow, overflow);
            m.set_gpr(inst.dst, w, r);
          })
          X86_PACK_CASE(And, {
            const unsigned w = inst.width;
            const std::uint64_t r = m.gpr(inst.dst, w) & m.int_src(inst);
            m.flags_logic(r, w);
            m.set_gpr(inst.dst, w, r);
          })
          X86_PACK_CASE(Or, {
            const unsigned w = inst.width;
            const std::uint64_t r = m.gpr(inst.dst, w) | m.int_src(inst);
            m.flags_logic(r, w);
            m.set_gpr(inst.dst, w, r);
          })
          X86_PACK_CASE(Xor, {
            const unsigned w = inst.width;
            const std::uint64_t r = m.gpr(inst.dst, w) ^ m.int_src(inst);
            m.flags_logic(r, w);
            m.set_gpr(inst.dst, w, r);
          })
          X86_PACK_CASE(Shl, {
            const unsigned w = inst.width;
            const unsigned bits = w * 8;
            const std::uint64_t a = m.gpr(inst.dst, w);
            const unsigned count = static_cast<unsigned>(
                m.int_src(inst) & (bits >= 64 ? 63 : 31));
            const std::uint64_t r = truncate(a << count, bits);
            bool cf = false;
            if (count > 0 && count <= bits) cf = (a >> (bits - count)) & 1;
            m.set_result_flags(r, w, cf, false);
            m.set_gpr(inst.dst, w, r);
          })
          X86_PACK_CASE(Sar, {
            const unsigned w = inst.width;
            const unsigned bits = w * 8;
            const std::uint64_t a = m.gpr(inst.dst, w);
            const unsigned count = static_cast<unsigned>(
                m.int_src(inst) & (bits >= 64 ? 63 : 31));
            const std::uint64_t r = truncate(
                static_cast<std::uint64_t>(sign_extend(a, bits) >> count),
                bits);
            bool cf = false;
            if (count > 0) cf = (sign_extend(a, bits) >> (count - 1)) & 1;
            m.set_result_flags(r, w, cf, false);
            m.set_gpr(inst.dst, w, r);
          })
          X86_PACK_CASE(Shr, {
            const unsigned w = inst.width;
            const unsigned bits = w * 8;
            const std::uint64_t a = m.gpr(inst.dst, w);
            const unsigned count = static_cast<unsigned>(
                m.int_src(inst) & (bits >= 64 ? 63 : 31));
            const std::uint64_t r = truncate(a, bits) >> count;
            bool cf = false;
            if (count > 0) cf = (a >> (count - 1)) & 1;
            m.set_result_flags(r, w, cf, false);
            m.set_gpr(inst.dst, w, r);
          })
          X86_PACK_CASE(Neg, {
            const unsigned w = inst.width;
            const std::uint64_t a = m.gpr(inst.dst, w);
            m.flags_sub(0, a, w);
            m.set_gpr(inst.dst, w, 0 - a);
          })
          X86_PACK_CASE(Not, {
            m.set_gpr(inst.dst, inst.width, ~m.gpr(inst.dst, inst.width));
          })
          X86_PACK_CASE(Idiv, {
            const unsigned w = inst.width;
            const unsigned bits = w * 8;
            const std::int64_t a = sign_extend(m.gpr(inst.dst, w), bits);
            const std::int64_t b = sign_extend(m.int_src(inst), bits);
            if (b == 0) m.trap(TrapKind::DivideByZero, 0);
            const std::int64_t min =
                bits >= 64 ? std::numeric_limits<std::int64_t>::min()
                           : -(std::int64_t{1} << (bits - 1));
            if (b == -1 && a == min)
              m.trap(TrapKind::DivideByZero, 0, "division overflow");
            const std::int64_t r = a / b;
            m.set_result_flags(static_cast<std::uint64_t>(r), w, false,
                               false);
            m.set_gpr(inst.dst, w, static_cast<std::uint64_t>(r));
          })
          X86_PACK_CASE(Irem, {
            const unsigned w = inst.width;
            const unsigned bits = w * 8;
            const std::int64_t a = sign_extend(m.gpr(inst.dst, w), bits);
            const std::int64_t b = sign_extend(m.int_src(inst), bits);
            if (b == 0) m.trap(TrapKind::DivideByZero, 0);
            const std::int64_t min =
                bits >= 64 ? std::numeric_limits<std::int64_t>::min()
                           : -(std::int64_t{1} << (bits - 1));
            if (b == -1 && a == min)
              m.trap(TrapKind::DivideByZero, 0, "division overflow");
            const std::int64_t r = a % b;
            m.set_result_flags(static_cast<std::uint64_t>(r), w, false,
                               false);
            m.set_gpr(inst.dst, w, static_cast<std::uint64_t>(r));
          })
          X86_PACK_CASE(Cmp, {
            m.flags_sub(m.gpr(inst.dst, inst.width), m.int_src(inst),
                        inst.width);
          })
          X86_PACK_CASE(Test, {
            m.flags_logic(m.gpr(inst.dst, inst.width) & m.int_src(inst),
                          inst.width);
          })
          X86_PACK_CASE(Setcc, {
            m.set_gpr(inst.dst, 1,
                      cond_holds(inst.cond, m.state_.rflags) ? 1 : 0);
          })
          X86_PACK_CASE(Cmov, {
            if (cond_holds(inst.cond, m.state_.rflags))
              m.set_gpr(inst.dst, inst.width, m.int_src(inst));
          })
          X86_PACK_CASE(MovsdRR, {
            m.xmm_lo(inst.dst) = m.xmm_lo(inst.src);  // merges: high kept
          })
          X86_PACK_CASE(MovsdRM, {
            m.xmm_lo(inst.dst) = m.load(inst.mem, 8);
            m.xmm_hi(inst.dst) = 0;  // movsd xmm, m64 zeroes the upper lane
          })
          X86_PACK_CASE(MovsdMR, {
            m.store(inst.mem, 8, m.xmm_lo(inst.dst));
          })
          X86_PACK_CASE(Addsd, {
            m.xmm_lo(inst.dst) =
                bits_of(double_of(m.xmm_lo(inst.dst)) + m.fp_src(inst));
          })
          X86_PACK_CASE(Subsd, {
            m.xmm_lo(inst.dst) =
                bits_of(double_of(m.xmm_lo(inst.dst)) - m.fp_src(inst));
          })
          X86_PACK_CASE(Mulsd, {
            m.xmm_lo(inst.dst) =
                bits_of(double_of(m.xmm_lo(inst.dst)) * m.fp_src(inst));
          })
          X86_PACK_CASE(Divsd, {
            m.xmm_lo(inst.dst) =
                bits_of(double_of(m.xmm_lo(inst.dst)) / m.fp_src(inst));
          })
          X86_PACK_CASE(Sqrtsd, {
            m.xmm_lo(inst.dst) = bits_of(std::sqrt(m.fp_src(inst)));
          })
          X86_PACK_CASE(Ucomisd, {
            const double a = double_of(m.xmm_lo(inst.dst));
            const double b = m.fp_src(inst);
            std::uint64_t f = 0;
            if (std::isnan(a) || std::isnan(b)) {
              f = (1ull << kFlagZF) | (1ull << kFlagPF) | (1ull << kFlagCF);
            } else if (a == b) {
              f = 1ull << kFlagZF;
            } else if (a < b) {
              f = 1ull << kFlagCF;
            }
            m.state_.rflags = f;
          })
          X86_PACK_CASE(Cvtsi2sd, {
            const std::int64_t v = sign_extend(
                m.gpr(inst.src, inst.src_width), inst.src_width * 8);
            m.xmm_lo(inst.dst) = bits_of(static_cast<double>(v));
          })
          X86_PACK_CASE(Cvttsd2si, {
            const double d = m.fp_src(inst);
            std::int64_t out;
            if (std::isnan(d) || d >= 9.2233720368547758e18 ||
                d < -9.2233720368547758e18)
              out = std::numeric_limits<std::int64_t>::min();
            else
              out = static_cast<std::int64_t>(d);
            m.set_gpr(inst.dst, inst.width, static_cast<std::uint64_t>(out));
          })
          X86_PACK_CASE(MovqXR, {
            m.xmm_lo(inst.dst) = m.state_.gpr[inst.src];
            m.xmm_hi(inst.dst) = 0;
          })
          X86_PACK_CASE(MovqRX, {
            m.set_gpr(inst.dst, 8, m.xmm_lo(inst.src));
          })

          case XOp::Jmp: {
            if (u->target_ok) {
              ip = u->target;
              break;
            }
            // Uniform trap: every lane takes the same invalid jump.
            flush();
            const TrapException trap(TrapKind::InvalidJump,
                                     Program::address_of_index(u->target));
            for (std::size_t j = 0; j != nact; ++j) {
              Machine& m = *act[j];
              m.executed_ = executed;
              m.current_index_ = ip;
              results[slot[j]] = m.trap_fill(trap);
            }
            act.clear();
            slot.clear();
            return true;
          }
          case XOp::Jcc: {
            const auto cc = u->inst->cond;
            const bool taken0 = cond_holds(cc, lead.state_.rflags);
            bool mixed = false;
            for (std::size_t j = 1; j != nact; ++j)
              if (cond_holds(cc, act[j]->state_.rflags) != taken0) {
                mixed = true;
                break;
              }
            if (!mixed) {
              if (!taken0) {
                ++ip;
                break;
              }
              if (u->target_ok) {
                ip = u->target;
                break;
              }
              flush();
              const TrapException trap(TrapKind::InvalidJump,
                                       Program::address_of_index(u->target));
              for (std::size_t j = 0; j != nact; ++j) {
                Machine& m = *act[j];
                m.executed_ = executed;
                m.current_index_ = ip;
                results[slot[j]] = m.trap_fill(trap);
              }
              act.clear();
              slot.clear();
              return true;
            }
            // Control divergence: park every lane at its own successor and
            // let the driver re-form the pack around the leader.
            flush();
            char dead[machine::kMaxLanes] = {};
            bool any_dead = false;
            for (std::size_t j = 0; j != nact; ++j) {
              Machine& m = *act[j];
              m.executed_ = executed;
              const bool taken = cond_holds(cc, m.state_.rflags);
              if (taken && !u->target_ok) {
                m.current_index_ = ip;
                results[slot[j]] = m.trap_fill(
                    TrapException(TrapKind::InvalidJump,
                                  Program::address_of_index(u->target)));
                dead[j] = 1;
                any_dead = true;
                continue;
              }
              m.state_.rip_index = taken ? u->target : ip + 1;
            }
            if (any_dead) pack_compact(act, slot, dead);
            pack_resolve(act, slot, results, base);
            return true;
          }
          case XOp::Call: {
            char dead[machine::kMaxLanes] = {};
            bool any_dead = false;
            for (std::size_t j = 0; j != nact; ++j) {
              Machine& m = *act[j];
              try {
                // Push before validating, like the slow path's
                // rip-then-jump_to.
                m.push(u->ret_addr);
                if (!u->target_ok)
                  m.trap(TrapKind::InvalidJump,
                         Program::address_of_index(u->target));
              } catch (const TrapException& trap) {
                m.executed_ = executed;
                m.current_index_ = ip;
                results[slot[j]] = m.trap_fill(trap);
                dead[j] = 1;
                any_dead = true;
              }
            }
            if (!any_dead) {
              ip = u->target;
              break;
            }
            flush();
            for (std::size_t j = 0; j != nact; ++j)
              if (!dead[j]) sync(*act[j], u->target);
            pack_compact(act, slot, dead);
            return true;
          }
          case XOp::CallBuiltin: {
            const Inst& inst = *u->inst;
            if (u->sig == nullptr) {
              // Slow path owns the failure; keep the bump, exactly as the
              // single-lane fast path's side exit does.
              for (std::size_t j = 0; j != nact; ++j) sync(*act[j], ip);
              dc.trace_invalidations.fetch_add(1, std::memory_order_relaxed);
              flush();
              return false;
            }
            char dead[machine::kMaxLanes] = {};
            bool any_dead = false;
            for (std::size_t j = 0; j != nact; ++j) {
              Machine& m = *act[j];
              try {
                std::vector<std::uint64_t> args(inst.arg_slots);
                for (std::uint16_t i = 0; i < inst.arg_slots; ++i)
                  args[i] = m.memory_.read(m.state_.gpr[RSP] + 8ull * i, 8);
                const std::uint64_t r =
                    m.runtime_.call_builtin(u->sig->name, args);
                if (u->sig->returns_value) {
                  if (u->sig->returns_double) {
                    m.xmm_lo(kXmmBase + 0) = r;
                    m.xmm_hi(kXmmBase + 0) = 0;
                  } else {
                    m.state_.gpr[RAX] = r;
                  }
                }
              } catch (const TrapException& trap) {
                m.executed_ = executed;
                m.current_index_ = ip;
                results[slot[j]] = m.trap_fill(trap);
                dead[j] = 1;
                any_dead = true;
              }
            }
            if (!any_dead) {
              ++ip;
              break;
            }
            flush();
            for (std::size_t j = 0; j != nact; ++j)
              if (!dead[j]) sync(*act[j], ip + 1);
            pack_compact(act, slot, dead);
            return true;
          }
          case XOp::Ret: {
            char dead[machine::kMaxLanes] = {};
            bool any_exit = false;
            bool mixed = false;
            std::uint64_t next = ~std::uint64_t{0};
            for (std::size_t j = 0; j != nact; ++j) {
              Machine& m = *act[j];
              try {
                const std::uint64_t addr = m.pop();
                if (addr == kHaltAddress) {
                  m.executed_ = executed;
                  results[slot[j]] = m.halt_fill();
                  dead[j] = 1;
                  any_exit = true;
                  continue;
                }
                const std::int64_t index = m.program_.index_of_address(addr);
                if (index < 0) {
                  m.executed_ = executed;
                  m.current_index_ = ip;
                  results[slot[j]] = m.trap_fill(
                      TrapException(TrapKind::InvalidJump, addr));
                  dead[j] = 1;
                  any_exit = true;
                  continue;
                }
                m.state_.rip_index = static_cast<std::uint64_t>(index);
                if (next == ~std::uint64_t{0})
                  next = static_cast<std::uint64_t>(index);
                else if (next != static_cast<std::uint64_t>(index))
                  mixed = true;
              } catch (const TrapException& trap) {
                m.executed_ = executed;
                m.current_index_ = ip;
                results[slot[j]] = m.trap_fill(trap);
                dead[j] = 1;
                any_exit = true;
              }
            }
            if (!any_exit && !mixed) {
              ip = static_cast<std::size_t>(next);
              break;
            }
            flush();
            for (std::size_t j = 0; j != nact; ++j)
              if (!dead[j]) act[j]->executed_ = executed;
            if (any_exit) pack_compact(act, slot, dead);
            pack_resolve(act, slot, results, base);
            return true;
          }
          case XOp::TrapFetch: {
            // The slow loop's fetch-bounds check traps before counting the
            // instruction; undo this dispatch's bump to match.
            flush();
            const TrapException trap(TrapKind::InvalidJump,
                                     Program::address_of_index(ip));
            for (std::size_t j = 0; j != nact; ++j) {
              Machine& m = *act[j];
              m.executed_ = executed - 1;
              m.current_index_ = ip;
              results[slot[j]] = m.trap_fill(trap);
            }
            act.clear();
            slot.clear();
            return true;
          }
        }
      }
    } catch (const TrapException& trap) {
      // A plain op trapped in lane `li` at `ip`: lanes before it completed
      // the op (they stand at ip + 1), lanes after it have not run it yet
      // and replay it through their own slow step — identical semantics,
      // pinned by the DispatchEquiv fixtures.
      flush();
      char dead[machine::kMaxLanes] = {};
      {
        Machine& m = *act[li];
        m.executed_ = executed;
        m.current_index_ = ip;
        m.state_.rip_index = ip + 1;
        results[slot[li]] = m.trap_fill(trap);
        dead[li] = 1;
      }
      for (std::size_t j = 0; j != li; ++j) sync(*act[j], ip + 1);
      for (std::size_t j = li + 1; j != nact; ++j) {
        Machine& m = *act[j];
        m.executed_ = executed - 1;
        m.state_.rip_index = ip;
        try {
          m.slow_step();
        } catch (const TrapException& again) {
          results[slot[j]] = m.trap_fill(again);
          dead[j] = 1;
        } catch (const machine::TimeoutException&) {
          results[slot[j]] = m.timeout_fill();
          dead[j] = 1;
        }
      }
      pack_compact(act, slot, dead);
      return true;
    }
#undef X86_PACK_CASE
  }

  bool execute(const Inst& inst) {
    const unsigned w = inst.width;
    switch (inst.op) {
      case Op::MovRR: set_gpr(inst.dst, w, gpr(inst.src, w)); return false;
      case Op::MovRI:
        set_gpr(inst.dst, w, static_cast<std::uint64_t>(inst.imm));
        return false;
      case Op::MovRM: set_gpr(inst.dst, w, load(inst.mem, w)); return false;
      case Op::MovMR: store(inst.mem, w, gpr(inst.dst, w)); return false;
      case Op::MovMI:
        store(inst.mem, w, static_cast<std::uint64_t>(inst.imm));
        return false;
      case Op::MovzxRR:
        set_gpr(inst.dst, 8, gpr(inst.src, inst.src_width));
        return false;
      case Op::MovzxRM:
        set_gpr(inst.dst, 8, load(inst.mem, inst.src_width));
        return false;
      case Op::MovsxRR:
        set_gpr(inst.dst, 8,
                static_cast<std::uint64_t>(sign_extend(
                    gpr(inst.src, inst.src_width), inst.src_width * 8)));
        return false;
      case Op::MovsxRM:
        set_gpr(inst.dst, 8,
                static_cast<std::uint64_t>(sign_extend(
                    load(inst.mem, inst.src_width), inst.src_width * 8)));
        return false;
      case Op::Lea:
        set_gpr(inst.dst, 8, effective_address(inst.mem));
        return false;
      case Op::Push: push(state_.gpr[inst.dst]); return false;
      case Op::Pop: set_gpr(inst.dst, 8, pop()); return false;

      case Op::Add: {
        const std::uint64_t a = gpr(inst.dst, w), b = int_src(inst);
        flags_add(a, b, w);
        set_gpr(inst.dst, w, a + b);
        return false;
      }
      case Op::Sub: {
        const std::uint64_t a = gpr(inst.dst, w), b = int_src(inst);
        flags_sub(a, b, w);
        set_gpr(inst.dst, w, a - b);
        return false;
      }
      case Op::Imul: {
        const unsigned bits = w * 8;
        const std::int64_t a = sign_extend(gpr(inst.dst, w), bits);
        const std::int64_t b = sign_extend(int_src(inst), bits);
        const __int128 wide = static_cast<__int128>(a) * b;
        const std::uint64_t r = truncate(static_cast<std::uint64_t>(wide), bits);
        const bool overflow = wide != sign_extend(r, bits);
        set_result_flags(r, w, overflow, overflow);
        set_gpr(inst.dst, w, r);
        return false;
      }
      case Op::And: case Op::Or: case Op::Xor: {
        const std::uint64_t a = gpr(inst.dst, w), b = int_src(inst);
        const std::uint64_t r = inst.op == Op::And ? (a & b)
                              : inst.op == Op::Or ? (a | b)
                                                  : (a ^ b);
        flags_logic(r, w);
        set_gpr(inst.dst, w, r);
        return false;
      }
      case Op::Shl: case Op::Sar: case Op::Shr: {
        const unsigned bits = w * 8;
        const std::uint64_t a = gpr(inst.dst, w);
        const unsigned count = static_cast<unsigned>(
            int_src(inst) & (bits >= 64 ? 63 : 31));
        std::uint64_t r;
        bool cf = false;
        if (inst.op == Op::Shl) {
          r = truncate(a << count, bits);
          if (count > 0 && count <= bits) cf = (a >> (bits - count)) & 1;
        } else if (inst.op == Op::Shr) {
          r = truncate(a, bits) >> count;
          if (count > 0) cf = (a >> (count - 1)) & 1;
        } else {
          r = truncate(static_cast<std::uint64_t>(
                           sign_extend(a, bits) >> count), bits);
          if (count > 0) cf = (sign_extend(a, bits) >> (count - 1)) & 1;
        }
        set_result_flags(r, w, cf, false);
        set_gpr(inst.dst, w, r);
        return false;
      }
      case Op::Neg: {
        const std::uint64_t a = gpr(inst.dst, w);
        flags_sub(0, a, w);
        set_gpr(inst.dst, w, 0 - a);
        return false;
      }
      case Op::Not:
        set_gpr(inst.dst, w, ~gpr(inst.dst, w));
        return false;
      case Op::Idiv: case Op::Irem: {
        const unsigned bits = w * 8;
        const std::int64_t a = sign_extend(gpr(inst.dst, w), bits);
        const std::int64_t b = sign_extend(int_src(inst), bits);
        if (b == 0) trap(TrapKind::DivideByZero, 0);
        const std::int64_t min =
            bits >= 64 ? std::numeric_limits<std::int64_t>::min()
                       : -(std::int64_t{1} << (bits - 1));
        if (b == -1 && a == min)
          trap(TrapKind::DivideByZero, 0, "division overflow");
        const std::int64_t r = inst.op == Op::Idiv ? a / b : a % b;
        set_result_flags(static_cast<std::uint64_t>(r), w, false, false);
        set_gpr(inst.dst, w, static_cast<std::uint64_t>(r));
        return false;
      }
      case Op::Cmp:
        flags_sub(gpr(inst.dst, w), int_src(inst), w);
        return false;
      case Op::Test:
        flags_logic(gpr(inst.dst, w) & int_src(inst), w);
        return false;
      case Op::Setcc:
        set_gpr(inst.dst, 1, cond_holds(inst.cond, state_.rflags) ? 1 : 0);
        return false;
      case Op::Cmov:
        if (cond_holds(inst.cond, state_.rflags))
          set_gpr(inst.dst, w, int_src(inst));
        return false;

      case Op::Jmp:
        jump_to(inst.target);
        return false;
      case Op::Jcc:
        if (cond_holds(inst.cond, state_.rflags)) jump_to(inst.target);
        return false;
      case Op::Call: {
        push(Program::address_of_index(state_.rip_index));
        jump_to(inst.target);
        return false;
      }
      case Op::CallBuiltin: {
        const BuiltinSig& sig = program_.builtins.at(
            static_cast<std::size_t>(inst.target));
        std::vector<std::uint64_t> args(inst.arg_slots);
        for (std::uint16_t i = 0; i < inst.arg_slots; ++i)
          args[i] = memory_.read(state_.gpr[RSP] + 8ull * i, 8);
        const std::uint64_t r = runtime_.call_builtin(sig.name, args);
        if (sig.returns_value) {
          if (sig.returns_double) {
            xmm_lo(kXmmBase + 0) = r;
            xmm_hi(kXmmBase + 0) = 0;
          } else {
            state_.gpr[RAX] = r;
          }
        }
        return false;
      }
      case Op::Ret: {
        const std::uint64_t addr = pop();
        if (addr == kHaltAddress) return true;
        const std::int64_t index = program_.index_of_address(addr);
        if (index < 0) trap(TrapKind::InvalidJump, addr);
        state_.rip_index = static_cast<std::uint64_t>(index);
        return false;
      }

      case Op::MovsdRR:
        xmm_lo(inst.dst) = xmm_lo(inst.src);  // merges: high lane kept
        return false;
      case Op::MovsdRM:
        xmm_lo(inst.dst) = load(inst.mem, 8);
        xmm_hi(inst.dst) = 0;  // movsd xmm, m64 zeroes the upper lane
        return false;
      case Op::MovsdMR:
        store(inst.mem, 8, xmm_lo(inst.dst));
        return false;
      case Op::Addsd: case Op::Subsd: case Op::Mulsd: case Op::Divsd: {
        const double a = double_of(xmm_lo(inst.dst));
        const double b = fp_src(inst);
        double r;
        switch (inst.op) {
          case Op::Addsd: r = a + b; break;
          case Op::Subsd: r = a - b; break;
          case Op::Mulsd: r = a * b; break;
          default: r = a / b; break;
        }
        xmm_lo(inst.dst) = bits_of(r);
        return false;
      }
      case Op::Sqrtsd:
        xmm_lo(inst.dst) = bits_of(std::sqrt(fp_src(inst)));
        return false;
      case Op::Ucomisd: {
        const double a = double_of(xmm_lo(inst.dst));
        const double b = fp_src(inst);
        std::uint64_t f = 0;
        if (std::isnan(a) || std::isnan(b)) {
          f = (1ull << kFlagZF) | (1ull << kFlagPF) | (1ull << kFlagCF);
        } else if (a == b) {
          f = 1ull << kFlagZF;
        } else if (a < b) {
          f = 1ull << kFlagCF;
        }
        state_.rflags = f;
        return false;
      }
      case Op::Cvtsi2sd: {
        const std::int64_t v = sign_extend(gpr(inst.src, inst.src_width),
                                           inst.src_width * 8);
        xmm_lo(inst.dst) = bits_of(static_cast<double>(v));
        return false;
      }
      case Op::Cvttsd2si: {
        const double d = fp_src(inst);
        std::int64_t out;
        if (std::isnan(d) || d >= 9.2233720368547758e18 ||
            d < -9.2233720368547758e18)
          out = std::numeric_limits<std::int64_t>::min();
        else
          out = static_cast<std::int64_t>(d);
        set_gpr(inst.dst, w, static_cast<std::uint64_t>(out));
        return false;
      }
      case Op::MovqXR:
        xmm_lo(inst.dst) = state_.gpr[inst.src];
        xmm_hi(inst.dst) = 0;
        return false;
      case Op::MovqRX:
        set_gpr(inst.dst, 8, xmm_lo(inst.src));
        return false;
    }
    trap(TrapKind::Unreachable, state_.rip_index, op_name(inst.op));
  }

  void jump_to(std::int64_t target) {
    if (target < 0 ||
        static_cast<std::size_t>(target) >= program_.code.size())
      trap(TrapKind::InvalidJump,
           Program::address_of_index(static_cast<std::size_t>(target)));
    state_.rip_index = static_cast<std::uint64_t>(target);
  }

  const Program& program_;
  SimHook* hook_ = nullptr;
  SimLimits limits_;
  machine::Memory memory_;
  machine::Runtime runtime_;
  MachineState state_;
  std::uint64_t executed_ = 0;
  std::uint64_t next_snapshot_at_ = 0;
  std::uint64_t current_index_ = 0;  // instruction being executed (trap_pc)
  machine::DispatchMode mode_ = machine::DispatchMode::Threaded;
  std::unique_ptr<XTrace> trace_;  // decoded on first fast-path entry
};

void Machine::pack_run(Machine* const* lanes, std::size_t count,
                       SimResult* results) {
  machine::PackCounters& pc = machine::pack_counters();
  pc.groups.fetch_add(1, std::memory_order_relaxed);
  pc.lanes.fetch_add(count, std::memory_order_relaxed);
  std::vector<Machine*> act(lanes, lanes + count);
  std::vector<std::size_t> slot(count);
  for (std::size_t i = 0; i < count; ++i) slot[i] = i;
  const std::uint64_t base = act[0]->executed_;
  while (act.size() > 1) {
    std::uint64_t stop = act[0]->limits_.max_instructions;
    if (pack_fast_eligible(act, &stop) &&
        pack_fast_run(act, slot, results, stop, base))
      continue;
    if (act.size() > 1) pack_slow_step(act, slot, results, base);
  }
  // The last lane left (if any) no longer shares work with anyone; finish
  // it on the plain single-lane path.
  if (!act.empty()) results[slot[0]] = act[0]->resume_finish();
}

Simulator::Simulator(const Program& program, SimHook* hook)
    : program_(program), hook_(hook) {}

Simulator::~Simulator() = default;

SimResult Simulator::run(const SimLimits& limits) {
  if (machine_ == nullptr) machine_ = std::make_unique<Machine>(program_);
  machine_->prepare(hook_, limits);
  SimResult r = machine_->run();
  record_run_instructions(r.dynamic_instructions);
  return r;
}

SimResult Simulator::run_from(const SimSnapshot& snapshot,
                              const SimLimits& limits) {
  if (machine_ == nullptr) machine_ = std::make_unique<Machine>(program_);
  machine_->prepare(hook_, limits);
  SimResult r = machine_->run_from(snapshot);
  // dynamic_instructions is snapshot-primed (absolute position in the
  // golden schedule); the histogram tracks work actually done here.
  record_run_instructions(r.dynamic_instructions - snapshot.executed);
  return r;
}

void Simulator::run_lockstep(Simulator* const* lanes, std::size_t count,
                             const SimSnapshot& snapshot,
                             const SimLimits& limits, SimResult* results) {
  bool packable = count > 1 && count <= machine::kMaxLanes &&
                  machine::dispatch_mode() == machine::DispatchMode::Threaded &&
                  limits.snapshot_stride == 0;
  for (std::size_t i = 1; packable && i < count; ++i)
    if (&lanes[i]->program_ != &lanes[0]->program_) packable = false;
  if (!packable) {
    for (std::size_t i = 0; i < count; ++i)
      results[i] = lanes[i]->run_from(snapshot, limits);
    return;
  }
  Machine* machines[machine::kMaxLanes];
  machine::Memory::RestoreStats restores[machine::kMaxLanes];
  for (std::size_t i = 0; i < count; ++i) {
    Simulator& lane = *lanes[i];
    if (lane.machine_ == nullptr)
      lane.machine_ = std::make_unique<Machine>(lane.program_);
    lane.machine_->prepare(lane.hook_, limits);
    restores[i] = lane.machine_->restore_from(snapshot);
    machines[i] = lane.machine_.get();
  }
  Machine::pack_run(machines, count, results);
  for (std::size_t i = 0; i < count; ++i) {
    results[i].restored_pages = restores[i].pages;
    results[i].delta_restored = restores[i].delta;
    record_run_instructions(results[i].dynamic_instructions -
                            snapshot.executed);
  }
}

}  // namespace faultlab::x86
