// Minimal CSV writer for machine-readable experiment output (consumed by
// EXPERIMENTS.md generation and by downstream plotting).
#pragma once

#include <string>
#include <vector>

namespace faultlab {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  /// Write to `path`; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  static std::string escape(const std::string& cell);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace faultlab
