// Centralized environment-variable parsing.
//
// Every FAULTLAB_* knob used to hand-roll its own strtol/strtoull/strcmp
// parse, with inconsistent error handling: some call sites silently fell
// back on garbage, some accepted trailing junk ("16abc" parsed as 16), and
// none but FAULTLAB_TRIALS rejected overflow. These helpers give all of
// them the endptr-checked, ERANGE-checked, warn-on-stderr behaviour that
// FAULTLAB_TRIALS pioneered, so a typo'd variable is loudly ignored
// instead of silently misconfiguring a campaign.
#pragma once

#include <cstdint>

namespace faultlab::support {

/// Parses env var `name` as a non-negative decimal integer. Returns
/// `fallback` silently when the variable is unset, and with a one-line
/// stderr warning when the value is empty, has trailing garbage, is
/// negative, overflows 64 bits, or is below `min` (pass min = 1 to reject
/// an unintended zero).
std::uint64_t parse_env_u64(const char* name, std::uint64_t fallback,
                            std::uint64_t min = 0);

/// Parses env var `name` as a finite decimal floating-point value in
/// [min, max]. Returns `fallback` silently when the variable is unset, and
/// with a one-line stderr warning when the value is empty, has trailing
/// garbage, is not finite, or falls outside the closed [min, max] range.
double parse_env_double(const char* name, double fallback, double min,
                        double max);

/// Parses env var `name` as a boolean switch. Unset or empty returns
/// `fallback`; the literal "0" returns false; any other value returns
/// true. (Matches the historical semantics of FAULTLAB_METRICS,
/// FAULTLAB_PROGRESS, and FAULTLAB_DELTA_RESTORE.)
bool parse_env_flag(const char* name, bool fallback);

/// Reads env var `name` as a string. Returns nullptr when the variable is
/// unset or empty, so call sites get one canonical "not configured" state
/// instead of each re-checking both conditions. The returned pointer
/// aliases the process environment and stays valid for the process
/// lifetime (faultlab never calls setenv).
const char* parse_env_string(const char* name);

/// Parses env var `name` against a closed set of `count` choices. Returns
/// the index of the matching choice, or `fallback` (also an index) when
/// the variable is unset, empty, or — with a one-line stderr warning
/// listing the valid values — not one of the choices.
std::size_t parse_env_choice(const char* name, const char* const* choices,
                             std::size_t count, std::size_t fallback);

}  // namespace faultlab::support
