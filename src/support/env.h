// Centralized environment-variable parsing.
//
// Every FAULTLAB_* knob used to hand-roll its own strtol/strtoull/strcmp
// parse, with inconsistent error handling: some call sites silently fell
// back on garbage, some accepted trailing junk ("16abc" parsed as 16), and
// none but FAULTLAB_TRIALS rejected overflow. These helpers give all of
// them the endptr-checked, ERANGE-checked, warn-on-stderr behaviour that
// FAULTLAB_TRIALS pioneered, so a typo'd variable is loudly ignored
// instead of silently misconfiguring a campaign.
#pragma once

#include <cstdint>

namespace faultlab::support {

/// Parses env var `name` as a non-negative decimal integer. Returns
/// `fallback` silently when the variable is unset, and with a one-line
/// stderr warning when the value is empty, has trailing garbage, is
/// negative, overflows 64 bits, or is below `min` (pass min = 1 to reject
/// an unintended zero).
std::uint64_t parse_env_u64(const char* name, std::uint64_t fallback,
                            std::uint64_t min = 0);

/// Parses env var `name` as a boolean switch. Unset or empty returns
/// `fallback`; the literal "0" returns false; any other value returns
/// true. (Matches the historical semantics of FAULTLAB_METRICS,
/// FAULTLAB_PROGRESS, and FAULTLAB_DELTA_RESTORE.)
bool parse_env_flag(const char* name, bool fallback);

}  // namespace faultlab::support
