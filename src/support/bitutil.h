// Bit-manipulation helpers shared by the fault injectors and simulators.
#pragma once

#include <bit>
#include <cstdint>

namespace faultlab {

/// Flip bit `bit` (0 = LSB) of `value`. Precondition: bit < 64.
constexpr std::uint64_t flip_bit(std::uint64_t value, unsigned bit) noexcept {
  return value ^ (std::uint64_t{1} << bit);
}

/// Mask covering the low `bits` bits; bits == 64 yields all ones.
constexpr std::uint64_t low_mask(unsigned bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/// Sign-extend the low `bits` bits of `value` to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t value, unsigned bits) noexcept {
  if (bits >= 64) return static_cast<std::int64_t>(value);
  const std::uint64_t m = std::uint64_t{1} << (bits - 1);
  value &= low_mask(bits);
  return static_cast<std::int64_t>((value ^ m) - m);
}

/// Truncate `value` to the low `bits` bits.
constexpr std::uint64_t truncate(std::uint64_t value, unsigned bits) noexcept {
  return value & low_mask(bits);
}

/// Reinterpret a double as its IEEE-754 bit pattern and back.
constexpr std::uint64_t bits_of(double d) noexcept {
  return std::bit_cast<std::uint64_t>(d);
}
constexpr double double_of(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

}  // namespace faultlab
