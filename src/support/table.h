// ASCII table writer used by the experiment harnesses to print the paper's
// tables (IV, V, ...) and figure data series in a readable fixed-width form.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace faultlab {

class TextTable {
 public:
  enum class Align { Left, Right };

  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Column alignment (default: first column left, rest right).
  void set_align(std::size_t column, Align align);

  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

}  // namespace faultlab
