#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace faultlab {

namespace {
constexpr double kZ95 = 1.959963984540054;  // two-sided 95% normal quantile
}

double Proportion::margin95() const noexcept {
  if (trials == 0) return 0.0;
  const double p = value();
  const double n = static_cast<double>(trials);
  return kZ95 * std::sqrt(p * (1.0 - p) / n);
}

Proportion::Interval Proportion::wilson95() const noexcept {
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double p = value();
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      kZ95 * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

bool Proportion::overlap95(const Proportion& a, const Proportion& b) noexcept {
  const auto ia = a.wilson95();
  const auto ib = b.wilson95();
  return ia.lo <= ib.hi && ib.lo <= ia.hi;
}

double Proportion::z_statistic(const Proportion& a, const Proportion& b) noexcept {
  if (a.trials == 0 || b.trials == 0) return 0.0;
  const double na = static_cast<double>(a.trials);
  const double nb = static_cast<double>(b.trials);
  const double pooled =
      static_cast<double>(a.hits + b.hits) / (na + nb);
  const double se = std::sqrt(pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb));
  if (se == 0.0) return 0.0;
  return (a.value() - b.value()) / se;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_count(std::size_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace faultlab
