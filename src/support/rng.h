// Deterministic pseudo-random number generation for fault-injection
// campaigns. Every experiment in FaultLab is seeded so that campaigns are
// exactly replayable; we use xoshiro256** (public-domain algorithm by
// Blackman & Vigna) seeded through SplitMix64, which gives high-quality
// 64-bit streams with a tiny state that is cheap to fork per trial.
#pragma once

#include <cstdint>
#include <limits>

namespace faultlab {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Also usable standalone as a fast hash/mixer.
constexpr std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = split_mix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child generator (for per-trial streams).
  Rng fork() noexcept { return Rng((*this)() ^ 0x6a09e667f3bcc909ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace faultlab
