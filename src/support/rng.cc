#include "support/rng.h"

namespace faultlab {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method, 64x64->128 bit.
  __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>((*this)()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace faultlab
