#include "support/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace faultlab::support {

std::uint64_t parse_env_u64(const char* name, std::uint64_t fallback,
                            std::uint64_t min) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  // strtoull accepts a leading '-' by wrapping the value; reject it
  // explicitly so FAULTLAB_TRIALS=-1 does not become 2^64-1.
  if (errno == ERANGE || end == env || *end != '\0' || env[0] == '-' ||
      parsed < min) {
    std::fprintf(stderr,
                 "warning: %s='%s' is not an integer >= %llu; using %llu\n",
                 name, env, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

double parse_env_double(const char* name, double fallback, double min,
                        double max) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (errno == ERANGE || end == env || *end != '\0' ||
      !(parsed >= min && parsed <= max)) {  // !(..) also rejects NaN
    std::fprintf(stderr,
                 "warning: %s='%s' is not a number in [%g, %g]; using %g\n",
                 name, env, min, max, fallback);
    return fallback;
  }
  return parsed;
}

bool parse_env_flag(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return !(env[0] == '0' && env[1] == '\0');
}

const char* parse_env_string(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return nullptr;
  return env;
}

std::size_t parse_env_choice(const char* name, const char* const* choices,
                             std::size_t count, std::size_t fallback) {
  const char* env = parse_env_string(name);
  if (env == nullptr) return fallback;
  for (std::size_t i = 0; i < count; ++i)
    if (std::strcmp(env, choices[i]) == 0) return i;
  std::fprintf(stderr, "warning: %s='%s' is not one of {", name, env);
  for (std::size_t i = 0; i < count; ++i)
    std::fprintf(stderr, "%s%s", i == 0 ? "" : ", ", choices[i]);
  std::fprintf(stderr, "}; using '%s'\n", choices[fallback]);
  return fallback;
}

}  // namespace faultlab::support
