#include "support/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace faultlab::support {

std::uint64_t parse_env_u64(const char* name, std::uint64_t fallback,
                            std::uint64_t min) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  // strtoull accepts a leading '-' by wrapping the value; reject it
  // explicitly so FAULTLAB_TRIALS=-1 does not become 2^64-1.
  if (errno == ERANGE || end == env || *end != '\0' || env[0] == '-' ||
      parsed < min) {
    std::fprintf(stderr,
                 "warning: %s='%s' is not an integer >= %llu; using %llu\n",
                 name, env, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

bool parse_env_flag(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return !(env[0] == '0' && env[1] == '\0');
}

}  // namespace faultlab::support
