// Small statistics toolkit for fault-injection campaigns: binomial
// proportions with 95% confidence intervals (the error bars of the paper's
// Figure 4), plus running mean/variance for the perf benches.
#pragma once

#include <cstddef>
#include <string>

namespace faultlab {

/// A binomial proportion estimate: `hits` successes out of `trials`.
struct Proportion {
  std::size_t hits = 0;
  std::size_t trials = 0;

  double value() const noexcept {
    return trials == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(trials);
  }
  double percent() const noexcept { return value() * 100.0; }

  /// Half-width of the normal-approximation 95% CI (what the paper plots).
  double margin95() const noexcept;

  /// Wilson score interval — better behaved near 0/1 and small n.
  struct Interval {
    double lo = 0.0;
    double hi = 0.0;
  };
  Interval wilson95() const noexcept;

  /// True when the two proportions' 95% CIs overlap — the paper's criterion
  /// for "LLFI and PINFI agree within measurement error".
  static bool overlap95(const Proportion& a, const Proportion& b) noexcept;

  /// Two-proportion z-test statistic (pooled). Returns 0 when either side
  /// has no trials.
  static double z_statistic(const Proportion& a, const Proportion& b) noexcept;
};

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Format helpers used by the report writers.
std::string format_percent(double fraction, int decimals = 1);
std::string format_count(std::size_t n);  ///< digit-grouped, e.g. 1,234,567

}  // namespace faultlab
