// Monotonic wall-clock stopwatch used for campaign timing and the run
// manifest. steady_clock so timings are immune to wall-clock adjustments.
#pragma once

#include <chrono>

namespace faultlab {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace faultlab
