#include "support/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace faultlab {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("CsvWriter row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << to_string();
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace faultlab
