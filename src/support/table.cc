#include "support/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace faultlab {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  align_.assign(header_.size(), Align::Right);
  if (!align_.empty()) align_[0] = Align::Left;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TextTable row arity mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t column, Align align) {
  align_.at(column) = align;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      if (align_[c] == Align::Left)
        os << cell << std::string(pad, ' ');
      else
        os << std::string(pad, ' ') << cell;
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << "-+-";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace faultlab
