// Recursive-descent parser for mini-C.
#pragma once

#include <string>

#include "frontend/ast.h"

namespace faultlab::mc {

/// Parses a full translation unit; throws CompileError on syntax errors.
TranslationUnit parse(const std::string& source);

}  // namespace faultlab::mc
