// Hand-written lexer for mini-C. Supports //- and /* */-style comments,
// decimal and hex integer literals (optional L/U suffixes), floating-point
// literals, char literals with the usual escapes, and string literals.
#pragma once

#include <string>
#include <vector>

#include "frontend/token.h"

namespace faultlab::mc {

/// Thrown on any lexical or syntactic error, with source position.
class CompileError : public std::exception {
 public:
  CompileError(std::string message, int line, int column);
  const char* what() const noexcept override { return formatted_.c_str(); }
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  std::string formatted_;
  int line_;
  int column_;
};

/// Tokenizes the whole input eagerly; throws CompileError on bad input.
std::vector<Token> tokenize(const std::string& source);

}  // namespace faultlab::mc
