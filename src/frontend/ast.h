// Abstract syntax tree for mini-C.
//
// The parser produces this tree with purely syntactic type annotations
// (AstType). Sema resolves module-level declarations against the module's
// TypeContext; codegen walks function bodies, computing expression types as
// it lowers (IR values carry their types, so no separate annotation pass is
// needed).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"

namespace faultlab::mc {

// ---------------------------------------------------------------------------
// Syntactic types

enum class BaseType : std::uint8_t {
  Void, Char, Short, Int, Long, Double, Struct,
};

/// A parsed type: base type + pointer depth (arrays are handled at the
/// declarator level, not inside AstType).
struct AstType {
  BaseType base = BaseType::Int;
  std::string struct_name;  // when base == Struct
  int pointer_depth = 0;
};

// ---------------------------------------------------------------------------
// Expressions

enum class ExprKind : std::uint8_t {
  IntLit, FloatLit, StringLit,
  Ident,
  Unary, Postfix, Binary, Assign, Conditional,
  Call, Index, Member, Cast, SizeofType,
};

enum class UnaryOp : std::uint8_t {
  Neg, LogicalNot, BitNot, Deref, AddrOf, PreInc, PreDec,
};
enum class PostfixOp : std::uint8_t { PostInc, PostDec };
enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
  LogicalAnd, LogicalOr,
};
enum class AssignOp : std::uint8_t {
  Plain, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // IntLit / FloatLit / StringLit
  std::uint64_t int_value = 0;
  bool int_is_long = false;  // 'L' suffix or does not fit in 32 bits
  double float_value = 0.0;
  std::string str_value;

  // Ident / Member (field name) / Call (callee name)
  std::string name;

  // operators
  UnaryOp unary_op{};
  PostfixOp postfix_op{};
  BinaryOp binary_op{};
  AssignOp assign_op{};
  bool member_is_arrow = false;

  // Cast / SizeofType target
  AstType ast_type;

  std::vector<std::unique_ptr<Expr>> children;

  Expr* child(std::size_t i) const { return children.at(i).get(); }
};

std::unique_ptr<Expr> make_expr(ExprKind kind, int line);

// ---------------------------------------------------------------------------
// Statements

enum class StmtKind : std::uint8_t {
  Expr, Decl, Block, If, While, DoWhile, For, Return, Break, Continue, Empty,
};

struct Stmt;

/// A local variable declaration (one declarator).
struct LocalDecl {
  AstType type;
  std::string name;
  std::vector<std::int64_t> array_dims;  // outermost first; empty = scalar
  std::unique_ptr<Expr> init;            // optional
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::unique_ptr<Expr> expr;         // Expr / Return value / If / While cond
  std::vector<LocalDecl> decls;       // Decl
  std::vector<std::unique_ptr<Stmt>> body;  // Block
  std::unique_ptr<Stmt> then_branch;  // If / While / For / DoWhile body
  std::unique_ptr<Stmt> else_branch;  // If
  std::unique_ptr<Stmt> for_init;     // For (Decl or Expr statement)
  std::unique_ptr<Expr> for_step;     // For
};

std::unique_ptr<Stmt> make_stmt(StmtKind kind, int line);

// ---------------------------------------------------------------------------
// Top-level declarations

struct ParamDecl {
  AstType type;
  std::string name;
};

struct FuncDecl {
  AstType return_type;
  std::string name;
  std::vector<ParamDecl> params;
  std::unique_ptr<Stmt> body;  // always a Block
  int line = 0;
};

struct FieldDecl {
  AstType type;
  std::string name;
  std::vector<std::int64_t> array_dims;  // outermost first; empty = scalar
};

struct StructDecl {
  std::string name;
  std::vector<FieldDecl> fields;
  int line = 0;
};

struct GlobalDecl {
  AstType type;
  std::string name;
  std::vector<std::int64_t> array_dims;  // outermost first; empty = scalar
  std::vector<std::unique_ptr<Expr>> init;  // scalar (1) or array init list
  int line = 0;
};

struct TranslationUnit {
  std::vector<StructDecl> structs;
  std::vector<GlobalDecl> globals;
  std::vector<FuncDecl> functions;
};

}  // namespace faultlab::mc
