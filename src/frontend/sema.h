// Semantic analysis for mini-C: module-level declaration processing (structs,
// globals, function signatures, builtins) and the type rules shared with
// codegen (arithmetic conversions, assignability, struct field lookup).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "frontend/ast.h"
#include "ir/module.h"

namespace faultlab::mc {

/// Names and semantics of the runtime builtins every mini-C program can
/// call. The VM and the x86 simulator dispatch these to machine::Runtime.
struct BuiltinSpec {
  const char* name;
  const char* signature;  // human-readable, for docs
};
const std::vector<BuiltinSpec>& builtin_specs();

class SemaContext {
 public:
  /// Declares all module-level entities into `module` and records side
  /// tables. Throws CompileError on semantic errors.
  SemaContext(ir::Module& module, const TranslationUnit& tu);

  ir::Module& module() noexcept { return module_; }
  ir::TypeContext& types() noexcept { return module_.types(); }

  /// Resolves a syntactic type to an IR type (value type, not decayed).
  const ir::Type* resolve(const AstType& t, int line) const;

  /// Wraps `elem` in array types for the declarator dims (outermost first).
  const ir::Type* apply_dims(const ir::Type* elem,
                             const std::vector<std::int64_t>& dims) const;

  /// Field index within a struct; throws when absent.
  unsigned field_index(const ir::Type* struct_type, const std::string& name,
                       int line) const;

  /// C's usual arithmetic conversions restricted to our type set:
  /// if either side is double -> double; otherwise the wider integer type,
  /// at least i32.
  const ir::Type* usual_arithmetic(const ir::Type* a, const ir::Type* b) const;

  /// True when a value of `from` implicitly converts to `to` (int<->int,
  /// int<->double, identical pointers, null-literal rules are handled by
  /// codegen).
  bool implicitly_convertible(const ir::Type* from, const ir::Type* to) const;

  const TranslationUnit& tu() const noexcept { return tu_; }

 private:
  void declare_structs();
  void declare_builtins();
  void declare_functions();
  void define_globals();

  /// Constant-evaluates a global initializer expression.
  struct ConstValue {
    bool is_double = false;
    std::int64_t i = 0;
    double d = 0.0;
  };
  ConstValue eval_const(const Expr& e) const;
  void encode_scalar(std::vector<std::uint8_t>& bytes, std::size_t offset,
                     const ir::Type* type, const ConstValue& v) const;

  ir::Module& module_;
  const TranslationUnit& tu_;
  std::map<const ir::Type*, std::vector<std::string>> struct_field_names_;
};

}  // namespace faultlab::mc
