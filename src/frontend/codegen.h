// Code generation: lowers a type-checked mini-C translation unit to IR.
//
// Locals are lowered clang-style: every variable gets an entry-block alloca
// with explicit load/store at each access; the mem2reg pass later promotes
// scalars to SSA registers (introducing the phi nodes whose lowering the
// paper's Table I discusses).
#pragma once

#include <memory>
#include <string>

#include "frontend/sema.h"
#include "ir/module.h"

namespace faultlab::mc {

/// Compiles mini-C source into a fresh IR module (unoptimized, verifier
/// clean). Throws CompileError on any lexical/syntactic/semantic error.
std::unique_ptr<ir::Module> compile_to_ir(const std::string& source,
                                          const std::string& module_name);

}  // namespace faultlab::mc
