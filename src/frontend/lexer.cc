#include "frontend/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <sstream>

namespace faultlab::mc {

CompileError::CompileError(std::string message, int line, int column)
    : line_(line), column_(column) {
  std::ostringstream os;
  os << "line " << line << ":" << column << ": " << message;
  formatted_ = os.str();
}

const char* token_name(Tok t) noexcept {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::CharLit: return "char literal";
    case Tok::StringLit: return "string literal";
    case Tok::Ident: return "identifier";
    case Tok::KwVoid: return "void";
    case Tok::KwChar: return "char";
    case Tok::KwShort: return "short";
    case Tok::KwInt: return "int";
    case Tok::KwLong: return "long";
    case Tok::KwDouble: return "double";
    case Tok::KwUnsigned: return "unsigned";
    case Tok::KwStruct: return "struct";
    case Tok::KwIf: return "if";
    case Tok::KwElse: return "else";
    case Tok::KwWhile: return "while";
    case Tok::KwFor: return "for";
    case Tok::KwDo: return "do";
    case Tok::KwReturn: return "return";
    case Tok::KwBreak: return "break";
    case Tok::KwContinue: return "continue";
    case Tok::KwSizeof: return "sizeof";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Comma: return ",";
    case Tok::Semi: return ";";
    case Tok::Colon: return ":";
    case Tok::Question: return "?";
    case Tok::Dot: return ".";
    case Tok::Arrow: return "->";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Amp: return "&";
    case Tok::Pipe: return "|";
    case Tok::Caret: return "^";
    case Tok::Tilde: return "~";
    case Tok::Bang: return "!";
    case Tok::Shl: return "<<";
    case Tok::Shr: return ">>";
    case Tok::Lt: return "<";
    case Tok::Gt: return ">";
    case Tok::Le: return "<=";
    case Tok::Ge: return ">=";
    case Tok::EqEq: return "==";
    case Tok::NotEq: return "!=";
    case Tok::AmpAmp: return "&&";
    case Tok::PipePipe: return "||";
    case Tok::Assign: return "=";
    case Tok::PlusAssign: return "+=";
    case Tok::MinusAssign: return "-=";
    case Tok::StarAssign: return "*=";
    case Tok::SlashAssign: return "/=";
    case Tok::PercentAssign: return "%=";
    case Tok::AmpAssign: return "&=";
    case Tok::PipeAssign: return "|=";
    case Tok::CaretAssign: return "^=";
    case Tok::ShlAssign: return "<<=";
    case Tok::ShrAssign: return ">>=";
    case Tok::PlusPlus: return "++";
    case Tok::MinusMinus: return "--";
  }
  return "?";
}

namespace {

const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw = {
      {"void", Tok::KwVoid},       {"char", Tok::KwChar},
      {"short", Tok::KwShort},     {"int", Tok::KwInt},
      {"long", Tok::KwLong},       {"double", Tok::KwDouble},
      {"unsigned", Tok::KwUnsigned}, {"struct", Tok::KwStruct},
      {"if", Tok::KwIf},           {"else", Tok::KwElse},
      {"while", Tok::KwWhile},     {"for", Tok::KwFor},
      {"do", Tok::KwDo},           {"return", Tok::KwReturn},
      {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
      {"sizeof", Tok::KwSizeof},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_whitespace_and_comments();
      Token t = next();
      out.push_back(t);
      if (t.kind == Tok::End) break;
    }
    return out;
  }

 private:
  [[noreturn]] void error(const std::string& msg) {
    throw CompileError(msg, line_, column_);
  }

  bool eof() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  bool match(char c) {
    if (peek() == c) {
      advance();
      return true;
    }
    return false;
  }

  void skip_whitespace_and_comments() {
    while (!eof()) {
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!eof() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!eof() && !(peek() == '*' && peek(1) == '/')) advance();
        if (eof()) error("unterminated block comment");
        advance();
        advance();
      } else {
        break;
      }
    }
  }

  Token make(Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.column = column_;
    return t;
  }

  char escape_char() {
    char c = advance();
    if (c != '\\') return c;
    char e = advance();
    switch (e) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default:
        error(std::string("unknown escape \\") + e);
    }
  }

  Token next() {
    if (eof()) return make(Tok::End);
    Token t = make(Tok::End);
    char c = peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
        ident.push_back(advance());
      auto it = keywords().find(ident);
      t.kind = it != keywords().end() ? it->second : Tok::Ident;
      t.text = std::move(ident);
      return t;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) return number(t);

    if (c == '\'') {
      advance();
      if (eof()) error("unterminated char literal");
      char value = escape_char();
      if (!match('\'')) error("unterminated char literal");
      t.kind = Tok::CharLit;
      t.int_value = static_cast<std::uint64_t>(static_cast<unsigned char>(value));
      return t;
    }

    if (c == '"') {
      advance();
      std::string s;
      while (!eof() && peek() != '"') s.push_back(escape_char());
      if (!match('"')) error("unterminated string literal");
      t.kind = Tok::StringLit;
      t.text = std::move(s);
      return t;
    }

    advance();
    switch (c) {
      case '(': t.kind = Tok::LParen; return t;
      case ')': t.kind = Tok::RParen; return t;
      case '{': t.kind = Tok::LBrace; return t;
      case '}': t.kind = Tok::RBrace; return t;
      case '[': t.kind = Tok::LBracket; return t;
      case ']': t.kind = Tok::RBracket; return t;
      case ',': t.kind = Tok::Comma; return t;
      case ';': t.kind = Tok::Semi; return t;
      case ':': t.kind = Tok::Colon; return t;
      case '?': t.kind = Tok::Question; return t;
      case '.': t.kind = Tok::Dot; return t;
      case '~': t.kind = Tok::Tilde; return t;
      case '+':
        t.kind = match('+') ? Tok::PlusPlus
               : match('=') ? Tok::PlusAssign : Tok::Plus;
        return t;
      case '-':
        t.kind = match('-') ? Tok::MinusMinus
               : match('>') ? Tok::Arrow
               : match('=') ? Tok::MinusAssign : Tok::Minus;
        return t;
      case '*': t.kind = match('=') ? Tok::StarAssign : Tok::Star; return t;
      case '/': t.kind = match('=') ? Tok::SlashAssign : Tok::Slash; return t;
      case '%': t.kind = match('=') ? Tok::PercentAssign : Tok::Percent; return t;
      case '&':
        t.kind = match('&') ? Tok::AmpAmp
               : match('=') ? Tok::AmpAssign : Tok::Amp;
        return t;
      case '|':
        t.kind = match('|') ? Tok::PipePipe
               : match('=') ? Tok::PipeAssign : Tok::Pipe;
        return t;
      case '^': t.kind = match('=') ? Tok::CaretAssign : Tok::Caret; return t;
      case '!': t.kind = match('=') ? Tok::NotEq : Tok::Bang; return t;
      case '=': t.kind = match('=') ? Tok::EqEq : Tok::Assign; return t;
      case '<':
        if (match('<'))
          t.kind = match('=') ? Tok::ShlAssign : Tok::Shl;
        else
          t.kind = match('=') ? Tok::Le : Tok::Lt;
        return t;
      case '>':
        if (match('>'))
          t.kind = match('=') ? Tok::ShrAssign : Tok::Shr;
        else
          t.kind = match('=') ? Tok::Ge : Tok::Gt;
        return t;
      default:
        error(std::string("unexpected character '") + c + "'");
    }
  }

  Token number(Token t) {
    std::string digits;
    bool is_float = false;
    bool is_hex = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      is_hex = true;
      while (std::isxdigit(static_cast<unsigned char>(peek())))
        digits.push_back(advance());
      if (digits.empty()) error("empty hex literal");
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        digits.push_back(advance());
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        digits.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek())))
          digits.push_back(advance());
      }
      if (peek() == 'e' || peek() == 'E') {
        is_float = true;
        digits.push_back(advance());
        if (peek() == '+' || peek() == '-') digits.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek())))
          digits.push_back(advance());
      }
    }
    if (is_float) {
      t.kind = Tok::FloatLit;
      t.float_value = std::strtod(digits.c_str(), nullptr);
      return t;
    }
    t.kind = Tok::IntLit;
    errno = 0;
    char* end = nullptr;
    t.int_value = std::strtoull(digits.c_str(), &end, is_hex ? 16 : 10);
    if (errno == ERANGE)
      error("integer literal '" + digits + "' overflows 64 bits");
    if (end != digits.c_str() + digits.size())
      error("malformed integer literal '" + digits + "'");
    // Optional suffixes (order-insensitive combination of L and U); the
    // parser decides the literal's type from `text`.
    while (peek() == 'L' || peek() == 'l' || peek() == 'U' || peek() == 'u')
      t.text.push_back(static_cast<char>(std::toupper(advance())));
    return t;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  return Lexer(source).run();
}

}  // namespace faultlab::mc
