// Token definitions for the mini-C front-end.
#pragma once

#include <cstdint>
#include <string>

namespace faultlab::mc {

enum class Tok : std::uint8_t {
  End,
  // literals / identifiers
  IntLit, FloatLit, CharLit, StringLit, Ident,
  // keywords
  KwVoid, KwChar, KwShort, KwInt, KwLong, KwDouble, KwUnsigned, KwStruct,
  KwIf, KwElse, KwWhile, KwFor, KwDo, KwReturn, KwBreak, KwContinue,
  KwSizeof,
  // punctuation
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Colon, Question, Dot, Arrow,
  // operators
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr,
  Lt, Gt, Le, Ge, EqEq, NotEq,
  AmpAmp, PipePipe,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
  PlusPlus, MinusMinus,
};

const char* token_name(Tok t) noexcept;

struct Token {
  Tok kind = Tok::End;
  std::string text;        // identifier / literal spelling
  std::uint64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
  int column = 0;
};

}  // namespace faultlab::mc
