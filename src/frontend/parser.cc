#include "frontend/parser.h"

#include <cstdint>

#include "frontend/lexer.h"

namespace faultlab::mc {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  TranslationUnit run() {
    TranslationUnit tu;
    while (peek().kind != Tok::End) {
      if (peek().kind == Tok::KwStruct && peek(2).kind == Tok::LBrace) {
        tu.structs.push_back(parse_struct());
        continue;
      }
      // Global variable or function: parse type + name, disambiguate on '('.
      AstType type = parse_type();
      Token name = expect(Tok::Ident, "declaration name");
      if (peek().kind == Tok::LParen) {
        tu.functions.push_back(parse_function(type, name));
      } else {
        parse_global(tu, type, name);
      }
    }
    return tu;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& advance() { return toks_[pos_++]; }
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind) {
    if (check(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(Tok kind, const std::string& what) {
    if (!check(kind))
      error("expected " + std::string(token_name(kind)) + " (" + what +
            "), found " + token_name(peek().kind));
    return advance();
  }
  [[noreturn]] void error(const std::string& msg) const {
    throw CompileError(msg, peek().line, peek().column);
  }

  bool at_type_start() const {
    switch (peek().kind) {
      case Tok::KwVoid:
      case Tok::KwChar:
      case Tok::KwShort:
      case Tok::KwInt:
      case Tok::KwLong:
      case Tok::KwDouble:
      case Tok::KwUnsigned:
        return true;
      case Tok::KwStruct:
        return peek(1).kind == Tok::Ident;
      default:
        return false;
    }
  }

  /// Parses zero or more `[N]` suffixes (outermost dimension first).
  std::vector<std::int64_t> parse_array_dims() {
    std::vector<std::int64_t> dims;
    while (match(Tok::LBracket)) {
      dims.push_back(static_cast<std::int64_t>(
          expect(Tok::IntLit, "array size").int_value));
      expect(Tok::RBracket, "array size");
    }
    return dims;
  }

  AstType parse_type() {
    AstType t;
    if (check(Tok::KwUnsigned)) {
      error("unsigned types are not supported in mini-C; use masking on "
            "signed integers instead");
    }
    {
      switch (peek().kind) {
        case Tok::KwVoid: advance(); t.base = BaseType::Void; break;
        case Tok::KwChar: advance(); t.base = BaseType::Char; break;
        case Tok::KwShort: advance(); t.base = BaseType::Short; break;
        case Tok::KwInt: advance(); t.base = BaseType::Int; break;
        case Tok::KwLong: advance(); t.base = BaseType::Long; break;
        case Tok::KwDouble: advance(); t.base = BaseType::Double; break;
        case Tok::KwStruct: {
          advance();
          t.base = BaseType::Struct;
          t.struct_name = expect(Tok::Ident, "struct name").text;
          break;
        }
        default:
          error("expected a type");
      }
    }
    while (match(Tok::Star)) ++t.pointer_depth;
    return t;
  }

  StructDecl parse_struct() {
    StructDecl decl;
    decl.line = peek().line;
    expect(Tok::KwStruct, "struct");
    decl.name = expect(Tok::Ident, "struct name").text;
    expect(Tok::LBrace, "struct body");
    while (!match(Tok::RBrace)) {
      FieldDecl field;
      field.type = parse_type();
      field.name = expect(Tok::Ident, "field name").text;
      field.array_dims = parse_array_dims();
      expect(Tok::Semi, "field");
      decl.fields.push_back(std::move(field));
    }
    expect(Tok::Semi, "struct declaration");
    return decl;
  }

  void parse_global(TranslationUnit& tu, AstType type, const Token& name) {
    GlobalDecl g;
    g.line = name.line;
    g.type = type;
    g.name = name.text;
    g.array_dims = parse_array_dims();
    if (match(Tok::Assign)) {
      if (match(Tok::LBrace)) {
        while (!check(Tok::RBrace)) {
          g.init.push_back(parse_assignment());
          if (!match(Tok::Comma)) break;
        }
        expect(Tok::RBrace, "initializer list");
      } else {
        g.init.push_back(parse_assignment());
      }
    }
    expect(Tok::Semi, "global declaration");
    tu.globals.push_back(std::move(g));
  }

  FuncDecl parse_function(AstType ret, const Token& name) {
    FuncDecl fn;
    fn.line = name.line;
    fn.return_type = ret;
    fn.name = name.text;
    expect(Tok::LParen, "parameter list");
    if (!check(Tok::RParen)) {
      if (check(Tok::KwVoid) && peek(1).kind == Tok::RParen) {
        advance();  // (void)
      } else {
        do {
          ParamDecl p;
          p.type = parse_type();
          p.name = expect(Tok::Ident, "parameter name").text;
          fn.params.push_back(std::move(p));
        } while (match(Tok::Comma));
      }
    }
    expect(Tok::RParen, "parameter list");
    fn.body = parse_block();
    return fn;
  }

  std::unique_ptr<Stmt> parse_block() {
    auto block = make_stmt(StmtKind::Block, peek().line);
    expect(Tok::LBrace, "block");
    while (!match(Tok::RBrace)) block->body.push_back(parse_statement());
    return block;
  }

  std::unique_ptr<Stmt> parse_statement() {
    const int line = peek().line;
    switch (peek().kind) {
      case Tok::LBrace:
        return parse_block();
      case Tok::Semi:
        advance();
        return make_stmt(StmtKind::Empty, line);
      case Tok::KwIf: {
        advance();
        auto s = make_stmt(StmtKind::If, line);
        expect(Tok::LParen, "if condition");
        s->expr = parse_expression();
        expect(Tok::RParen, "if condition");
        s->then_branch = parse_statement();
        if (match(Tok::KwElse)) s->else_branch = parse_statement();
        return s;
      }
      case Tok::KwWhile: {
        advance();
        auto s = make_stmt(StmtKind::While, line);
        expect(Tok::LParen, "while condition");
        s->expr = parse_expression();
        expect(Tok::RParen, "while condition");
        s->then_branch = parse_statement();
        return s;
      }
      case Tok::KwDo: {
        advance();
        auto s = make_stmt(StmtKind::DoWhile, line);
        s->then_branch = parse_statement();
        expect(Tok::KwWhile, "do-while");
        expect(Tok::LParen, "do-while condition");
        s->expr = parse_expression();
        expect(Tok::RParen, "do-while condition");
        expect(Tok::Semi, "do-while");
        return s;
      }
      case Tok::KwFor: {
        advance();
        auto s = make_stmt(StmtKind::For, line);
        expect(Tok::LParen, "for header");
        if (!check(Tok::Semi)) {
          if (at_type_start())
            s->for_init = parse_declaration_statement();
          else {
            s->for_init = make_stmt(StmtKind::Expr, peek().line);
            s->for_init->expr = parse_expression();
            expect(Tok::Semi, "for init");
          }
        } else {
          advance();
        }
        if (!check(Tok::Semi)) s->expr = parse_expression();
        expect(Tok::Semi, "for condition");
        if (!check(Tok::RParen)) s->for_step = parse_expression();
        expect(Tok::RParen, "for header");
        s->then_branch = parse_statement();
        return s;
      }
      case Tok::KwReturn: {
        advance();
        auto s = make_stmt(StmtKind::Return, line);
        if (!check(Tok::Semi)) s->expr = parse_expression();
        expect(Tok::Semi, "return");
        return s;
      }
      case Tok::KwBreak:
        advance();
        expect(Tok::Semi, "break");
        return make_stmt(StmtKind::Break, line);
      case Tok::KwContinue:
        advance();
        expect(Tok::Semi, "continue");
        return make_stmt(StmtKind::Continue, line);
      default:
        break;
    }
    if (at_type_start()) return parse_declaration_statement();
    auto s = make_stmt(StmtKind::Expr, line);
    s->expr = parse_expression();
    expect(Tok::Semi, "expression statement");
    return s;
  }

  /// `int x = 1, *p, buf[10];`
  std::unique_ptr<Stmt> parse_declaration_statement() {
    const int line = peek().line;
    auto s = make_stmt(StmtKind::Decl, line);
    AstType base = parse_type();
    const int base_ptr_depth = base.pointer_depth;
    while (true) {
      LocalDecl d;
      d.type = base;
      d.type.pointer_depth = base_ptr_depth;
      // Additional stars bind to the declarator in C; we accept them here.
      while (match(Tok::Star)) ++d.type.pointer_depth;
      d.name = expect(Tok::Ident, "variable name").text;
      d.array_dims = parse_array_dims();
      if (match(Tok::Assign)) d.init = parse_assignment();
      s->decls.push_back(std::move(d));
      if (!match(Tok::Comma)) break;
    }
    expect(Tok::Semi, "declaration");
    return s;
  }

  // --- expressions (precedence climbing) ---

  std::unique_ptr<Expr> parse_expression() { return parse_assignment(); }

  std::unique_ptr<Expr> parse_assignment() {
    auto lhs = parse_conditional();
    AssignOp op;
    switch (peek().kind) {
      case Tok::Assign: op = AssignOp::Plain; break;
      case Tok::PlusAssign: op = AssignOp::Add; break;
      case Tok::MinusAssign: op = AssignOp::Sub; break;
      case Tok::StarAssign: op = AssignOp::Mul; break;
      case Tok::SlashAssign: op = AssignOp::Div; break;
      case Tok::PercentAssign: op = AssignOp::Rem; break;
      case Tok::AmpAssign: op = AssignOp::And; break;
      case Tok::PipeAssign: op = AssignOp::Or; break;
      case Tok::CaretAssign: op = AssignOp::Xor; break;
      case Tok::ShlAssign: op = AssignOp::Shl; break;
      case Tok::ShrAssign: op = AssignOp::Shr; break;
      default:
        return lhs;
    }
    const int line = peek().line;
    advance();
    auto e = make_expr(ExprKind::Assign, line);
    e->assign_op = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(parse_assignment());  // right associative
    return e;
  }

  std::unique_ptr<Expr> parse_conditional() {
    auto cond = parse_binary(0);
    if (!check(Tok::Question)) return cond;
    const int line = peek().line;
    advance();
    auto e = make_expr(ExprKind::Conditional, line);
    e->children.push_back(std::move(cond));
    e->children.push_back(parse_expression());
    expect(Tok::Colon, "conditional");
    e->children.push_back(parse_assignment());
    return e;
  }

  static int binary_precedence(Tok t) {
    switch (t) {
      case Tok::PipePipe: return 1;
      case Tok::AmpAmp: return 2;
      case Tok::Pipe: return 3;
      case Tok::Caret: return 4;
      case Tok::Amp: return 5;
      case Tok::EqEq:
      case Tok::NotEq: return 6;
      case Tok::Lt:
      case Tok::Le:
      case Tok::Gt:
      case Tok::Ge: return 7;
      case Tok::Shl:
      case Tok::Shr: return 8;
      case Tok::Plus:
      case Tok::Minus: return 9;
      case Tok::Star:
      case Tok::Slash:
      case Tok::Percent: return 10;
      default: return -1;
    }
  }

  static BinaryOp binary_op(Tok t) {
    switch (t) {
      case Tok::PipePipe: return BinaryOp::LogicalOr;
      case Tok::AmpAmp: return BinaryOp::LogicalAnd;
      case Tok::Pipe: return BinaryOp::Or;
      case Tok::Caret: return BinaryOp::Xor;
      case Tok::Amp: return BinaryOp::And;
      case Tok::EqEq: return BinaryOp::Eq;
      case Tok::NotEq: return BinaryOp::Ne;
      case Tok::Lt: return BinaryOp::Lt;
      case Tok::Le: return BinaryOp::Le;
      case Tok::Gt: return BinaryOp::Gt;
      case Tok::Ge: return BinaryOp::Ge;
      case Tok::Shl: return BinaryOp::Shl;
      case Tok::Shr: return BinaryOp::Shr;
      case Tok::Plus: return BinaryOp::Add;
      case Tok::Minus: return BinaryOp::Sub;
      case Tok::Star: return BinaryOp::Mul;
      case Tok::Slash: return BinaryOp::Div;
      case Tok::Percent: return BinaryOp::Rem;
      default: return BinaryOp::Add;
    }
  }

  std::unique_ptr<Expr> parse_binary(int min_prec) {
    auto lhs = parse_unary();
    while (true) {
      const int prec = binary_precedence(peek().kind);
      if (prec < 0 || prec < min_prec) return lhs;
      const Tok op_tok = peek().kind;
      const int line = peek().line;
      advance();
      auto rhs = parse_binary(prec + 1);
      auto e = make_expr(ExprKind::Binary, line);
      e->binary_op = binary_op(op_tok);
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  bool at_cast() const {
    if (!check(Tok::LParen)) return false;
    switch (peek(1).kind) {
      case Tok::KwVoid:
      case Tok::KwChar:
      case Tok::KwShort:
      case Tok::KwInt:
      case Tok::KwLong:
      case Tok::KwDouble:
      case Tok::KwUnsigned:
      case Tok::KwStruct:
        return true;
      default:
        return false;
    }
  }

  std::unique_ptr<Expr> parse_unary() {
    const int line = peek().line;
    auto make_unary = [&](UnaryOp op) {
      advance();
      auto e = make_expr(ExprKind::Unary, line);
      e->unary_op = op;
      e->children.push_back(parse_unary());
      return e;
    };
    switch (peek().kind) {
      case Tok::Minus: return make_unary(UnaryOp::Neg);
      case Tok::Bang: return make_unary(UnaryOp::LogicalNot);
      case Tok::Tilde: return make_unary(UnaryOp::BitNot);
      case Tok::Star: return make_unary(UnaryOp::Deref);
      case Tok::Amp: return make_unary(UnaryOp::AddrOf);
      case Tok::PlusPlus: return make_unary(UnaryOp::PreInc);
      case Tok::MinusMinus: return make_unary(UnaryOp::PreDec);
      case Tok::KwSizeof: {
        advance();
        expect(Tok::LParen, "sizeof");
        auto e = make_expr(ExprKind::SizeofType, line);
        e->ast_type = parse_type();
        expect(Tok::RParen, "sizeof");
        return e;
      }
      default:
        break;
    }
    if (at_cast()) {
      advance();  // (
      auto e = make_expr(ExprKind::Cast, line);
      e->ast_type = parse_type();
      expect(Tok::RParen, "cast");
      e->children.push_back(parse_unary());
      return e;
    }
    return parse_postfix();
  }

  std::unique_ptr<Expr> parse_postfix() {
    auto e = parse_primary();
    while (true) {
      const int line = peek().line;
      if (match(Tok::LBracket)) {
        auto idx = make_expr(ExprKind::Index, line);
        idx->children.push_back(std::move(e));
        idx->children.push_back(parse_expression());
        expect(Tok::RBracket, "index");
        e = std::move(idx);
      } else if (match(Tok::Dot)) {
        auto m = make_expr(ExprKind::Member, line);
        m->name = expect(Tok::Ident, "member name").text;
        m->children.push_back(std::move(e));
        e = std::move(m);
      } else if (match(Tok::Arrow)) {
        auto m = make_expr(ExprKind::Member, line);
        m->member_is_arrow = true;
        m->name = expect(Tok::Ident, "member name").text;
        m->children.push_back(std::move(e));
        e = std::move(m);
      } else if (check(Tok::PlusPlus) || check(Tok::MinusMinus)) {
        const bool inc = check(Tok::PlusPlus);
        advance();
        auto p = make_expr(ExprKind::Postfix, line);
        p->postfix_op = inc ? PostfixOp::PostInc : PostfixOp::PostDec;
        p->children.push_back(std::move(e));
        e = std::move(p);
      } else {
        return e;
      }
    }
  }

  std::unique_ptr<Expr> parse_primary() {
    const int line = peek().line;
    switch (peek().kind) {
      case Tok::IntLit: {
        const Token& t = advance();
        auto e = make_expr(ExprKind::IntLit, line);
        e->int_value = t.int_value;
        e->int_is_long = t.text.find('L') != std::string::npos ||
                         t.int_value > 0x7fffffffULL;
        return e;
      }
      case Tok::CharLit: {
        const Token& t = advance();
        auto e = make_expr(ExprKind::IntLit, line);
        e->int_value = t.int_value;
        return e;
      }
      case Tok::FloatLit: {
        const Token& t = advance();
        auto e = make_expr(ExprKind::FloatLit, line);
        e->float_value = t.float_value;
        return e;
      }
      case Tok::StringLit: {
        const Token& t = advance();
        auto e = make_expr(ExprKind::StringLit, line);
        e->str_value = t.text;
        return e;
      }
      case Tok::Ident: {
        const Token& t = advance();
        if (check(Tok::LParen)) {
          advance();
          auto call = make_expr(ExprKind::Call, line);
          call->name = t.text;
          if (!check(Tok::RParen)) {
            do {
              call->children.push_back(parse_assignment());
            } while (match(Tok::Comma));
          }
          expect(Tok::RParen, "call");
          return call;
        }
        auto e = make_expr(ExprKind::Ident, line);
        e->name = t.text;
        return e;
      }
      case Tok::LParen: {
        advance();
        auto e = parse_expression();
        expect(Tok::RParen, "parenthesized expression");
        return e;
      }
      default:
        error(std::string("unexpected token ") + token_name(peek().kind));
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

TranslationUnit parse(const std::string& source) {
  return Parser(tokenize(source)).run();
}

}  // namespace faultlab::mc
