#include "frontend/codegen.h"

#include <cassert>
#include <map>
#include <vector>

#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "ir/irbuilder.h"
#include "ir/verifier.h"

namespace faultlab::mc {

namespace {

using ir::BasicBlock;
using ir::IRBuilder;
using ir::Opcode;
using ir::Type;
using ir::Value;

/// An addressable location: pointer to storage plus the stored value type.
struct LValue {
  Value* address = nullptr;
  const Type* type = nullptr;  // pointee type (may be array/struct)
};

class CodeGen {
 public:
  CodeGen(SemaContext& sema) : sema_(sema), builder_(sema.module()) {}

  void run() {
    for (const auto& fn : sema_.tu().functions) emit_function(fn);
  }

 private:
  [[noreturn]] void error(int line, const std::string& msg) const {
    throw CompileError(msg, line, 1);
  }

  ir::TypeContext& types() { return sema_.types(); }
  ir::Module& module() { return sema_.module(); }

  // -- scope handling --------------------------------------------------

  struct Local {
    Value* slot = nullptr;      // alloca result (T*)
    const Type* type = nullptr; // T (may be array)
  };

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  Local* lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  Local& declare_local(const std::string& name, const Type* type, int line) {
    auto& scope = scopes_.back();
    if (scope.count(name))
      error(line, "redefinition of '" + name + "' in the same scope");
    // Allocas live at the head of the entry block so that mem2reg sees them
    // all in one place, mirroring clang's output.
    auto alloca = std::make_unique<ir::AllocaInst>(types().ptr_to(type), type,
                                                   name + ".addr");
    Value* slot =
        function_->entry()->insert(num_entry_allocas_++, std::move(alloca));
    scope[name] = Local{slot, type};
    return scope[name];
  }

  // -- conversions ------------------------------------------------------

  Value* convert(Value* v, const Type* to, int line, bool explicit_cast) {
    const Type* from = v->type();
    if (from == to) return v;
    auto& t = types();
    if (from->is_int() && to->is_int()) {
      if (from->int_bits() > to->int_bits())
        return builder_.cast(Opcode::Trunc, v, to);
      if (from->is_bool())
        return builder_.cast(Opcode::ZExt, v, to);  // i1 is 0/1
      return builder_.cast(Opcode::SExt, v, to);
    }
    if (from->is_int() && to->is_double()) {
      Value* wide = from->int_bits() < 64
                        ? convert(v, t.i64(), line, explicit_cast)
                        : v;
      return builder_.cast(Opcode::SIToFP, wide, to);
    }
    if (from->is_double() && to->is_int()) {
      Value* as_i64 = builder_.cast(Opcode::FPToSI, v, t.i64());
      return convert(as_i64, to, line, explicit_cast);
    }
    if (from->is_ptr() && to->is_ptr()) {
      if (!explicit_cast)
        error(line, "incompatible pointer types need an explicit cast (" +
                        from->to_string() + " -> " + to->to_string() + ")");
      return builder_.cast(Opcode::Bitcast, v, to);
    }
    if (from->is_int() && to->is_ptr()) {
      if (auto* ci = dynamic_cast<ir::ConstantInt*>(v); ci && ci->raw() == 0)
        return module().const_null(to);
      if (!explicit_cast)
        error(line, "integer to pointer needs an explicit cast");
      Value* wide = from->int_bits() < 64 ? convert(v, t.i64(), line, true) : v;
      return builder_.cast(Opcode::IntToPtr, wide, to);
    }
    if (from->is_ptr() && to->is_int()) {
      if (!explicit_cast) error(line, "pointer to integer needs an explicit cast");
      Value* as_i64 = builder_.cast(Opcode::PtrToInt, v, t.i64());
      return convert(as_i64, to, line, true);
    }
    error(line, "cannot convert " + from->to_string() + " to " + to->to_string());
  }

  /// Converts a value to i1 for use as a branch condition.
  Value* to_condition(Value* v, int line) {
    const Type* ty = v->type();
    if (ty->is_bool()) return v;
    if (ty->is_int())
      return builder_.icmp(ir::ICmpPred::NE, v, module().const_int(ty, 0));
    if (ty->is_double())
      return builder_.fcmp(ir::FCmpPred::ONE, v, module().const_double(0.0));
    if (ty->is_ptr())
      return builder_.icmp(ir::ICmpPred::NE, v, module().const_null(ty));
    error(line, "condition must be scalar");
  }

  // -- expressions ------------------------------------------------------

  LValue gen_lvalue(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Ident: {
        if (Local* local = lookup(e.name))
          return {local->slot, local->type};
        if (ir::GlobalVariable* g = module().find_global(e.name))
          return {g, g->value_type()};
        error(e.line, "undeclared identifier '" + e.name + "'");
      }
      case ExprKind::Unary: {
        if (e.unary_op != UnaryOp::Deref) break;
        Value* p = gen_rvalue(*e.child(0));
        if (!p->type()->is_ptr()) error(e.line, "dereference of non-pointer");
        return {p, p->type()->pointee()};
      }
      case ExprKind::Index: {
        return gen_index_address(e);
      }
      case ExprKind::Member: {
        return gen_member_address(e);
      }
      default:
        break;
    }
    error(e.line, "expression is not assignable");
  }

  LValue gen_index_address(const Expr& e) {
    const Expr& base = *e.child(0);
    Value* index = gen_rvalue(*e.child(1));
    if (!index->type()->is_int()) error(e.line, "array index must be integer");
    index = convert(index, types().i64(), e.line, false);

    // Array lvalue: gep [N x T]* with leading 0 index.
    if (is_aggregate_lvalue(base)) {
      LValue lv = gen_lvalue(base);
      if (lv.type->is_array()) {
        Value* addr = builder_.gep(lv.address, {module().const_i64(0), index});
        return {addr, lv.type->array_element()};
      }
      // fall through: struct lvalue indexed? invalid
    }
    Value* p = gen_rvalue(base);
    if (!p->type()->is_ptr()) error(e.line, "indexing a non-pointer");
    Value* addr = builder_.gep(p, {index});
    return {addr, p->type()->pointee()};
  }

  LValue gen_member_address(const Expr& e) {
    const Expr& base = *e.child(0);
    LValue agg;
    if (e.member_is_arrow) {
      Value* p = gen_rvalue(base);
      if (!p->type()->is_ptr() || !p->type()->pointee()->is_struct())
        error(e.line, "-> on non-struct-pointer");
      agg = {p, p->type()->pointee()};
    } else {
      agg = gen_lvalue(base);
      if (!agg.type->is_struct()) error(e.line, ". on non-struct");
    }
    const unsigned idx = sema_.field_index(agg.type, e.name, e.line);
    Value* addr = builder_.gep(
        agg.address, {module().const_i64(0), module().const_i32(idx)});
    const Type* field = agg.type->struct_fields()[idx];
    return {addr, field};
  }

  /// True when the expression denotes storage of array/struct type that
  /// must be accessed by address (no scalar rvalue exists).
  bool is_aggregate_lvalue(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Ident: {
        if (Local* local = lookup(e.name)) return !local->type->is_scalar();
        if (ir::GlobalVariable* g = module().find_global(e.name))
          return !g->value_type()->is_scalar();
        return false;
      }
      case ExprKind::Index:
      case ExprKind::Member: {
        // Type of the element/field decides; compute cheaply via dry typing.
        return !scalar_access_type(e);
      }
      case ExprKind::Unary:
        return false;
      default:
        return false;
    }
  }

  /// Returns true when Index/Member denotes a scalar element.
  bool scalar_access_type(const Expr& e) {
    // Conservative dry-run: resolve base aggregate type without emitting IR.
    const Type* t = static_type_of(e);
    return t != nullptr && t->is_scalar();
  }

  /// Best-effort static type of an lvalue expression without emitting IR.
  /// Returns null for expressions whose type needs evaluation (then we fall
  /// back to scalar handling, which reports precise errors).
  const Type* static_type_of(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Ident: {
        if (Local* local = lookup(e.name)) return local->type;
        if (ir::GlobalVariable* g = module().find_global(e.name))
          return g->value_type();
        return nullptr;
      }
      case ExprKind::Index: {
        const Type* base = static_type_of(*e.child(0));
        if (base == nullptr) return nullptr;
        if (base->is_array()) return base->array_element();
        if (base->is_ptr()) return base->pointee();
        return nullptr;
      }
      case ExprKind::Member: {
        const Type* base = static_type_of(*e.child(0));
        if (base == nullptr) return nullptr;
        if (e.member_is_arrow) {
          if (!base->is_ptr()) return nullptr;
          base = base->pointee();
        }
        if (!base->is_struct()) return nullptr;
        const unsigned idx = sema_.field_index(base, e.name, e.line);
        return base->struct_fields()[idx];
      }
      case ExprKind::Unary:
        if (e.unary_op == UnaryOp::Deref) {
          const Type* p = static_type_of(*e.child(0));
          return p != nullptr && p->is_ptr() ? p->pointee() : nullptr;
        }
        return nullptr;
      default:
        return nullptr;
    }
  }

  /// Loads an lvalue; arrays decay to element pointers instead of loading.
  Value* load_or_decay(const LValue& lv, int line) {
    if (lv.type->is_array()) {
      return builder_.gep(lv.address,
                          {module().const_i64(0), module().const_i64(0)});
    }
    if (lv.type->is_struct())
      error(line, "struct value used where a scalar is required");
    return builder_.load(lv.address);
  }

  Value* gen_rvalue(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return module().const_int(e.int_is_long ? types().i64() : types().i32(),
                                  e.int_value);
      case ExprKind::FloatLit:
        return module().const_double(e.float_value);
      case ExprKind::StringLit:
        return gen_string_literal(e);
      case ExprKind::SizeofType:
        return module().const_i64(static_cast<std::int64_t>(
            sema_.resolve(e.ast_type, e.line)->size_in_bytes()));
      case ExprKind::Ident:
      case ExprKind::Index:
      case ExprKind::Member: {
        LValue lv = gen_lvalue(e);
        return load_or_decay(lv, e.line);
      }
      case ExprKind::Unary:
        return gen_unary(e);
      case ExprKind::Postfix:
        return gen_incdec(*e.child(0), e.postfix_op == PostfixOp::PostInc,
                          /*return_old=*/true, e.line);
      case ExprKind::Binary:
        return gen_binary(e);
      case ExprKind::Assign:
        return gen_assign(e);
      case ExprKind::Conditional:
        return gen_conditional(e);
      case ExprKind::Call:
        return gen_call(e);
      case ExprKind::Cast: {
        const Type* to = sema_.resolve(e.ast_type, e.line);
        if (to->is_void())
          error(e.line, "void value used where a value is required");
        Value* v = gen_rvalue(*e.child(0));
        return convert(v, to, e.line, /*explicit_cast=*/true);
      }
    }
    error(e.line, "internal: unhandled expression kind");
  }

  /// Like gen_rvalue but permits void calls (for expression statements).
  Value* gen_rvalue_or_void(const Expr& e) {
    if (e.kind == ExprKind::Call) return gen_call(e);
    if (e.kind == ExprKind::Cast &&
        sema_.resolve(e.ast_type, e.line)->is_void()) {
      gen_rvalue_or_void(*e.child(0));
      return nullptr;
    }
    return gen_rvalue(e);
  }

  Value* gen_string_literal(const Expr& e) {
    std::vector<std::uint8_t> bytes(e.str_value.begin(), e.str_value.end());
    bytes.push_back(0);
    const Type* arr = types().array_of(types().i8(), bytes.size());
    ir::GlobalVariable* g = module().create_global(
        arr, ".str" + std::to_string(next_string_id_++), std::move(bytes));
    return builder_.gep(g, {module().const_i64(0), module().const_i64(0)});
  }

  Value* gen_unary(const Expr& e) {
    const Expr& operand = *e.child(0);
    switch (e.unary_op) {
      case UnaryOp::Neg: {
        Value* v = gen_rvalue(operand);
        if (v->type()->is_double())
          return builder_.binary(Opcode::FSub, module().const_double(0.0), v);
        if (!v->type()->is_int()) error(e.line, "negating non-arithmetic value");
        v = promote(v);
        return builder_.binary(Opcode::Sub, module().const_int(v->type(), 0), v);
      }
      case UnaryOp::BitNot: {
        Value* v = gen_rvalue(operand);
        if (!v->type()->is_int()) error(e.line, "~ on non-integer");
        v = promote(v);
        return builder_.binary(Opcode::Xor, v,
                               module().const_int(v->type(), ~std::uint64_t{0}));
      }
      case UnaryOp::LogicalNot: {
        Value* cond = to_condition(gen_rvalue(operand), e.line);
        Value* inverted = builder_.icmp(ir::ICmpPred::EQ, cond, module().const_i1(false));
        return convert(inverted, types().i32(), e.line, false);
      }
      case UnaryOp::Deref: {
        Value* p = gen_rvalue(operand);
        if (!p->type()->is_ptr()) error(e.line, "dereference of non-pointer");
        LValue lv{p, p->type()->pointee()};
        return load_or_decay(lv, e.line);
      }
      case UnaryOp::AddrOf: {
        LValue lv = gen_lvalue(operand);
        return lv.address;
      }
      case UnaryOp::PreInc:
        return gen_incdec(operand, true, /*return_old=*/false, e.line);
      case UnaryOp::PreDec:
        return gen_incdec(operand, false, /*return_old=*/false, e.line);
    }
    error(e.line, "internal: unhandled unary op");
  }

  Value* gen_incdec(const Expr& target, bool increment, bool return_old,
                    int line) {
    LValue lv = gen_lvalue(target);
    if (lv.type->is_array() || lv.type->is_struct())
      error(line, "++/-- on aggregate");
    Value* old_value = builder_.load(lv.address);
    Value* new_value = nullptr;
    if (lv.type->is_ptr()) {
      new_value = builder_.gep(old_value,
                               {module().const_i64(increment ? 1 : -1)});
    } else if (lv.type->is_double()) {
      new_value = builder_.binary(increment ? Opcode::FAdd : Opcode::FSub,
                                  old_value, module().const_double(1.0));
    } else {
      new_value = builder_.binary(increment ? Opcode::Add : Opcode::Sub,
                                  old_value, module().const_int(lv.type, 1));
    }
    builder_.store(new_value, lv.address);
    return return_old ? old_value : new_value;
  }

  /// Integer promotion: everything below i32 computes as i32.
  Value* promote(Value* v) {
    if (v->type()->is_int() && v->type()->int_bits() < 32)
      return convert(v, types().i32(), 0, false);
    return v;
  }

  Value* gen_binary(const Expr& e) {
    switch (e.binary_op) {
      case BinaryOp::LogicalAnd:
      case BinaryOp::LogicalOr:
        return gen_logical(e);
      default:
        break;
    }
    Value* lhs = gen_rvalue(*e.child(0));
    Value* rhs = gen_rvalue(*e.child(1));
    return gen_binary_values(e.binary_op, lhs, rhs, e.line);
  }

  Value* gen_binary_values(BinaryOp op, Value* lhs, Value* rhs, int line) {
    // Pointer arithmetic and comparisons.
    if (lhs->type()->is_ptr() || rhs->type()->is_ptr()) {
      return gen_pointer_binary(op, lhs, rhs, line);
    }

    const bool comparison = op == BinaryOp::Lt || op == BinaryOp::Le ||
                            op == BinaryOp::Gt || op == BinaryOp::Ge ||
                            op == BinaryOp::Eq || op == BinaryOp::Ne;

    const Type* common = sema_.usual_arithmetic(lhs->type(), rhs->type());
    lhs = convert(promote(lhs), common, line, false);
    rhs = convert(promote(rhs), common, line, false);

    if (comparison) {
      Value* flag;
      if (common->is_double()) {
        ir::FCmpPred pred;
        switch (op) {
          case BinaryOp::Lt: pred = ir::FCmpPred::OLT; break;
          case BinaryOp::Le: pred = ir::FCmpPred::OLE; break;
          case BinaryOp::Gt: pred = ir::FCmpPred::OGT; break;
          case BinaryOp::Ge: pred = ir::FCmpPred::OGE; break;
          case BinaryOp::Eq: pred = ir::FCmpPred::OEQ; break;
          default: pred = ir::FCmpPred::ONE; break;
        }
        flag = builder_.fcmp(pred, lhs, rhs);
      } else {
        ir::ICmpPred pred;
        switch (op) {
          case BinaryOp::Lt: pred = ir::ICmpPred::SLT; break;
          case BinaryOp::Le: pred = ir::ICmpPred::SLE; break;
          case BinaryOp::Gt: pred = ir::ICmpPred::SGT; break;
          case BinaryOp::Ge: pred = ir::ICmpPred::SGE; break;
          case BinaryOp::Eq: pred = ir::ICmpPred::EQ; break;
          default: pred = ir::ICmpPred::NE; break;
        }
        flag = builder_.icmp(pred, lhs, rhs);
      }
      return convert(flag, types().i32(), line, false);
    }

    if (common->is_double()) {
      Opcode opc;
      switch (op) {
        case BinaryOp::Add: opc = Opcode::FAdd; break;
        case BinaryOp::Sub: opc = Opcode::FSub; break;
        case BinaryOp::Mul: opc = Opcode::FMul; break;
        case BinaryOp::Div: opc = Opcode::FDiv; break;
        default:
          error(line, "invalid operands of double type");
      }
      return builder_.binary(opc, lhs, rhs);
    }

    Opcode opc;
    switch (op) {
      case BinaryOp::Add: opc = Opcode::Add; break;
      case BinaryOp::Sub: opc = Opcode::Sub; break;
      case BinaryOp::Mul: opc = Opcode::Mul; break;
      case BinaryOp::Div: opc = Opcode::SDiv; break;
      case BinaryOp::Rem: opc = Opcode::SRem; break;
      case BinaryOp::And: opc = Opcode::And; break;
      case BinaryOp::Or: opc = Opcode::Or; break;
      case BinaryOp::Xor: opc = Opcode::Xor; break;
      case BinaryOp::Shl: opc = Opcode::Shl; break;
      case BinaryOp::Shr: opc = Opcode::AShr; break;
      default:
        error(line, "internal: unhandled binary op");
    }
    return builder_.binary(opc, lhs, rhs);
  }

  Value* gen_pointer_binary(BinaryOp op, Value* lhs, Value* rhs, int line) {
    auto as_index = [&](Value* v) { return convert(v, types().i64(), line, false); };
    switch (op) {
      case BinaryOp::Add:
        if (lhs->type()->is_ptr() && rhs->type()->is_int())
          return builder_.gep(lhs, {as_index(rhs)});
        if (lhs->type()->is_int() && rhs->type()->is_ptr())
          return builder_.gep(rhs, {as_index(lhs)});
        error(line, "invalid pointer addition");
      case BinaryOp::Sub: {
        if (lhs->type()->is_ptr() && rhs->type()->is_int()) {
          Value* neg = builder_.binary(Opcode::Sub, module().const_i64(0),
                                       as_index(rhs));
          return builder_.gep(lhs, {neg});
        }
        if (lhs->type()->is_ptr() && rhs->type() == lhs->type()) {
          Value* a = builder_.cast(Opcode::PtrToInt, lhs, types().i64());
          Value* b = builder_.cast(Opcode::PtrToInt, rhs, types().i64());
          Value* diff = builder_.binary(Opcode::Sub, a, b);
          const std::uint64_t size = lhs->type()->pointee()->size_in_bytes();
          return builder_.binary(Opcode::SDiv, diff,
                                 module().const_i64(static_cast<std::int64_t>(size)));
        }
        error(line, "invalid pointer subtraction");
      }
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge: {
        // Allow comparing pointer to 0 (null).
        if (lhs->type()->is_ptr() && !rhs->type()->is_ptr())
          rhs = convert(rhs, lhs->type(), line, false);
        if (rhs->type()->is_ptr() && !lhs->type()->is_ptr())
          lhs = convert(lhs, rhs->type(), line, false);
        if (lhs->type() != rhs->type())
          error(line, "comparison of distinct pointer types");
        ir::ICmpPred pred;
        switch (op) {
          case BinaryOp::Eq: pred = ir::ICmpPred::EQ; break;
          case BinaryOp::Ne: pred = ir::ICmpPred::NE; break;
          case BinaryOp::Lt: pred = ir::ICmpPred::ULT; break;
          case BinaryOp::Le: pred = ir::ICmpPred::ULE; break;
          case BinaryOp::Gt: pred = ir::ICmpPred::UGT; break;
          default: pred = ir::ICmpPred::UGE; break;
        }
        Value* flag = builder_.icmp(pred, lhs, rhs);
        return convert(flag, types().i32(), line, false);
      }
      default:
        error(line, "invalid operands to binary operator (pointer)");
    }
  }

  Value* gen_logical(const Expr& e) {
    const bool is_and = e.binary_op == BinaryOp::LogicalAnd;
    BasicBlock* rhs_bb = function_->create_block(is_and ? "land.rhs" : "lor.rhs");
    BasicBlock* merge_bb = function_->create_block(is_and ? "land.end" : "lor.end");

    Value* lhs = to_condition(gen_rvalue(*e.child(0)), e.line);
    BasicBlock* lhs_bb = builder_.insert_block();
    if (is_and)
      builder_.cond_br(lhs, rhs_bb, merge_bb);
    else
      builder_.cond_br(lhs, merge_bb, rhs_bb);

    builder_.set_insert_point(rhs_bb);
    Value* rhs = to_condition(gen_rvalue(*e.child(1)), e.line);
    BasicBlock* rhs_end = builder_.insert_block();
    builder_.br(merge_bb);

    builder_.set_insert_point(merge_bb);
    ir::PhiInst* phi = builder_.phi(types().i1());
    phi->add_incoming(module().const_i1(!is_and), lhs_bb);
    phi->add_incoming(rhs, rhs_end);
    return convert(phi, types().i32(), e.line, false);
  }

  Value* gen_assign(const Expr& e) {
    LValue lv = gen_lvalue(*e.child(0));
    if (lv.type->is_array() || lv.type->is_struct())
      error(e.line, "cannot assign to aggregate (copy fields/elements)");
    Value* value;
    if (e.assign_op == AssignOp::Plain) {
      value = gen_rvalue(*e.child(1));
    } else {
      BinaryOp op;
      switch (e.assign_op) {
        case AssignOp::Add: op = BinaryOp::Add; break;
        case AssignOp::Sub: op = BinaryOp::Sub; break;
        case AssignOp::Mul: op = BinaryOp::Mul; break;
        case AssignOp::Div: op = BinaryOp::Div; break;
        case AssignOp::Rem: op = BinaryOp::Rem; break;
        case AssignOp::And: op = BinaryOp::And; break;
        case AssignOp::Or: op = BinaryOp::Or; break;
        case AssignOp::Xor: op = BinaryOp::Xor; break;
        case AssignOp::Shl: op = BinaryOp::Shl; break;
        default: op = BinaryOp::Shr; break;
      }
      Value* current = builder_.load(lv.address);
      Value* rhs = gen_rvalue(*e.child(1));
      value = gen_binary_values(op, current, rhs, e.line);
    }
    value = convert(value, lv.type, e.line, false);
    builder_.store(value, lv.address);
    return value;
  }

  Value* gen_conditional(const Expr& e) {
    BasicBlock* then_bb = function_->create_block("cond.true");
    BasicBlock* else_bb = function_->create_block("cond.false");
    BasicBlock* merge_bb = function_->create_block("cond.end");

    Value* cond = to_condition(gen_rvalue(*e.child(0)), e.line);
    builder_.cond_br(cond, then_bb, else_bb);

    builder_.set_insert_point(then_bb);
    Value* tv = gen_rvalue(*e.child(1));
    BasicBlock* then_end = builder_.insert_block();

    builder_.set_insert_point(else_bb);
    Value* fv = gen_rvalue(*e.child(2));
    BasicBlock* else_end = builder_.insert_block();

    const Type* result_type;
    if (tv->type() == fv->type()) {
      result_type = tv->type();
    } else if (tv->type()->is_ptr() || fv->type()->is_ptr()) {
      result_type = tv->type()->is_ptr() ? tv->type() : fv->type();
    } else {
      result_type = sema_.usual_arithmetic(tv->type(), fv->type());
    }

    builder_.set_insert_point(then_end);
    tv = convert(tv, result_type, e.line, false);
    builder_.br(merge_bb);
    then_end = builder_.insert_block();

    builder_.set_insert_point(else_end);
    fv = convert(fv, result_type, e.line, false);
    builder_.br(merge_bb);
    else_end = builder_.insert_block();

    builder_.set_insert_point(merge_bb);
    ir::PhiInst* phi = builder_.phi(result_type);
    phi->add_incoming(tv, then_end);
    phi->add_incoming(fv, else_end);
    return phi;
  }

  Value* gen_call(const Expr& e) {
    ir::Function* callee = module().find_function(e.name);
    if (callee == nullptr)
      error(e.line, "call to undeclared function '" + e.name + "'");
    const auto& params = callee->func_type()->func_params();
    if (params.size() != e.children.size())
      error(e.line, "wrong number of arguments to '" + e.name + "' (expected " +
                        std::to_string(params.size()) + ")");
    std::vector<Value*> args;
    for (std::size_t i = 0; i < params.size(); ++i) {
      Value* a = gen_rvalue(*e.child(i));
      args.push_back(convert(a, params[i], e.line, false));
    }
    return builder_.call(callee, std::move(args));
  }

  // -- statements -------------------------------------------------------

  void gen_stmt(const Stmt& s) {
    if (builder_.block_terminated()) {
      // Unreachable code after return/break/continue: skip, mirroring the
      // "no dead IR" shape a real compiler's CFG simplification produces.
      return;
    }
    switch (s.kind) {
      case StmtKind::Empty:
        return;
      case StmtKind::Expr:
        gen_rvalue_or_void(*s.expr);
        return;
      case StmtKind::Decl: {
        for (const auto& d : s.decls) {
          const Type* t = sema_.resolve(d.type, s.line);
          if (t->is_void()) error(s.line, "variable of void type");
          t = sema_.apply_dims(t, d.array_dims);
          if (t->is_struct() && t->struct_fields().empty())
            error(s.line, "variable of incomplete struct type");
          Local& local = declare_local(d.name, t, s.line);
          if (d.init) {
            if (!t->is_scalar()) error(s.line, "aggregate initializers not supported");
            Value* init = gen_rvalue(*d.init);
            builder_.store(convert(init, t, s.line, false), local.slot);
          }
        }
        return;
      }
      case StmtKind::Block: {
        push_scope();
        for (const auto& sub : s.body) gen_stmt(*sub);
        pop_scope();
        return;
      }
      case StmtKind::If: {
        BasicBlock* then_bb = function_->create_block("if.then");
        BasicBlock* merge_bb = function_->create_block("if.end");
        BasicBlock* else_bb =
            s.else_branch ? function_->create_block("if.else") : merge_bb;
        Value* cond = to_condition(gen_rvalue(*s.expr), s.line);
        builder_.cond_br(cond, then_bb, else_bb);
        builder_.set_insert_point(then_bb);
        gen_stmt(*s.then_branch);
        if (!builder_.block_terminated()) builder_.br(merge_bb);
        if (s.else_branch) {
          builder_.set_insert_point(else_bb);
          gen_stmt(*s.else_branch);
          if (!builder_.block_terminated()) builder_.br(merge_bb);
        }
        builder_.set_insert_point(merge_bb);
        return;
      }
      case StmtKind::While: {
        BasicBlock* cond_bb = function_->create_block("while.cond");
        BasicBlock* body_bb = function_->create_block("while.body");
        BasicBlock* end_bb = function_->create_block("while.end");
        builder_.br(cond_bb);
        builder_.set_insert_point(cond_bb);
        Value* cond = to_condition(gen_rvalue(*s.expr), s.line);
        builder_.cond_br(cond, body_bb, end_bb);
        builder_.set_insert_point(body_bb);
        loop_stack_.push_back({end_bb, cond_bb});
        gen_stmt(*s.then_branch);
        loop_stack_.pop_back();
        if (!builder_.block_terminated()) builder_.br(cond_bb);
        builder_.set_insert_point(end_bb);
        return;
      }
      case StmtKind::DoWhile: {
        BasicBlock* body_bb = function_->create_block("do.body");
        BasicBlock* cond_bb = function_->create_block("do.cond");
        BasicBlock* end_bb = function_->create_block("do.end");
        builder_.br(body_bb);
        builder_.set_insert_point(body_bb);
        loop_stack_.push_back({end_bb, cond_bb});
        gen_stmt(*s.then_branch);
        loop_stack_.pop_back();
        if (!builder_.block_terminated()) builder_.br(cond_bb);
        builder_.set_insert_point(cond_bb);
        Value* cond = to_condition(gen_rvalue(*s.expr), s.line);
        builder_.cond_br(cond, body_bb, end_bb);
        builder_.set_insert_point(end_bb);
        return;
      }
      case StmtKind::For: {
        push_scope();
        if (s.for_init) gen_stmt(*s.for_init);
        BasicBlock* cond_bb = function_->create_block("for.cond");
        BasicBlock* body_bb = function_->create_block("for.body");
        BasicBlock* step_bb = function_->create_block("for.step");
        BasicBlock* end_bb = function_->create_block("for.end");
        builder_.br(cond_bb);
        builder_.set_insert_point(cond_bb);
        if (s.expr) {
          Value* cond = to_condition(gen_rvalue(*s.expr), s.line);
          builder_.cond_br(cond, body_bb, end_bb);
        } else {
          builder_.br(body_bb);
        }
        builder_.set_insert_point(body_bb);
        loop_stack_.push_back({end_bb, step_bb});
        gen_stmt(*s.then_branch);
        loop_stack_.pop_back();
        if (!builder_.block_terminated()) builder_.br(step_bb);
        builder_.set_insert_point(step_bb);
        if (s.for_step) gen_rvalue_or_void(*s.for_step);
        builder_.br(cond_bb);
        builder_.set_insert_point(end_bb);
        pop_scope();
        return;
      }
      case StmtKind::Return: {
        const Type* ret = function_->return_type();
        if (ret->is_void()) {
          if (s.expr) error(s.line, "void function returning a value");
          builder_.ret_void();
        } else {
          if (!s.expr) error(s.line, "non-void function needs a return value");
          Value* v = gen_rvalue(*s.expr);
          builder_.ret(convert(v, ret, s.line, false));
        }
        return;
      }
      case StmtKind::Break:
        if (loop_stack_.empty()) error(s.line, "break outside loop");
        builder_.br(loop_stack_.back().break_target);
        return;
      case StmtKind::Continue:
        if (loop_stack_.empty()) error(s.line, "continue outside loop");
        builder_.br(loop_stack_.back().continue_target);
        return;
    }
  }

  void emit_function(const FuncDecl& fn) {
    function_ = module().find_function(fn.name);
    assert(function_ != nullptr);
    num_entry_allocas_ = 0;
    BasicBlock* entry = function_->create_block("entry");
    builder_.set_insert_point(entry);

    push_scope();
    // Copy arguments into stack slots (clang -O0 shape; mem2reg cleans up).
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      const Type* pt = function_->func_type()->func_params()[i];
      Local& local = declare_local(fn.params[i].name, pt, fn.line);
      builder_.store(function_->arg(i), local.slot);
    }
    gen_stmt(*fn.body);
    pop_scope();

    // Close any fall-through path.
    seal_open_blocks();
    function_->renumber();
    function_ = nullptr;
  }

  void seal_open_blocks() {
    for (const auto& bb : function_->blocks()) {
      if (bb->terminator() != nullptr) continue;
      builder_.set_insert_point(bb.get());
      const Type* ret = function_->return_type();
      if (ret->is_void()) {
        builder_.ret_void();
      } else if (ret->is_double()) {
        builder_.ret(module().const_double(0.0));
      } else if (ret->is_ptr()) {
        builder_.ret(module().const_null(ret));
      } else {
        builder_.ret(module().const_int(ret, 0));
      }
    }
  }

  struct LoopTargets {
    BasicBlock* break_target;
    BasicBlock* continue_target;
  };

  SemaContext& sema_;
  IRBuilder builder_;
  ir::Function* function_ = nullptr;
  std::vector<std::map<std::string, Local>> scopes_;
  std::vector<LoopTargets> loop_stack_;
  std::size_t num_entry_allocas_ = 0;
  unsigned next_string_id_ = 0;
};

}  // namespace

std::unique_ptr<ir::Module> compile_to_ir(const std::string& source,
                                          const std::string& module_name) {
  TranslationUnit tu = parse(source);
  auto module = std::make_unique<ir::Module>(module_name);
  SemaContext sema(*module, tu);
  CodeGen(sema).run();
  ir::verify_or_throw(*module);
  return module;
}

}  // namespace faultlab::mc
