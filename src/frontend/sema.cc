#include "frontend/sema.h"

#include <algorithm>
#include <cstring>

#include "frontend/lexer.h"
#include "support/bitutil.h"

namespace faultlab::mc {

const std::vector<BuiltinSpec>& builtin_specs() {
  static const std::vector<BuiltinSpec> specs = {
      {"print_int", "void print_int(long)"},
      {"print_double", "void print_double(double)"},
      {"print_char", "void print_char(int)"},
      {"print_str", "void print_str(char*)"},
      {"malloc", "char* malloc(long)"},
      {"free", "void free(char*)"},
      {"sqrt", "double sqrt(double)"},
      {"fabs", "double fabs(double)"},
      {"floor", "double floor(double)"},
  };
  return specs;
}

SemaContext::SemaContext(ir::Module& module, const TranslationUnit& tu)
    : module_(module), tu_(tu) {
  declare_structs();
  declare_builtins();
  declare_functions();
  define_globals();
}

void SemaContext::declare_structs() {
  // Two phases so that struct fields may point to any struct, including the
  // one being defined (linked data structures).
  for (const auto& s : tu_.structs) types().declare_struct(s.name);
  for (const auto& s : tu_.structs) {
    const ir::Type* declared = types().struct_by_name(s.name);
    std::vector<const ir::Type*> fields;
    std::vector<std::string> names;
    for (const auto& f : s.fields) {
      const ir::Type* ft = apply_dims(resolve(f.type, s.line), f.array_dims);
      if (ft->is_struct() && ft->struct_fields().empty())
        throw CompileError("field of incomplete struct type (use a pointer)",
                           s.line, 1);
      fields.push_back(ft);
      names.push_back(f.name);
    }
    types().define_struct(declared, std::move(fields));
    struct_field_names_[declared] = std::move(names);
  }
}

void SemaContext::declare_builtins() {
  auto& t = types();
  const ir::Type* charp = t.ptr_to(t.i8());
  auto declare = [&](const char* name, const ir::Type* ret,
                     std::vector<const ir::Type*> params) {
    module_.create_function(t.func_type(ret, std::move(params)), name,
                            /*is_builtin=*/true);
  };
  declare("print_int", t.void_type(), {t.i64()});
  declare("print_double", t.void_type(), {t.double_type()});
  declare("print_char", t.void_type(), {t.i32()});
  declare("print_str", t.void_type(), {charp});
  declare("malloc", charp, {t.i64()});
  declare("free", t.void_type(), {charp});
  declare("sqrt", t.double_type(), {t.double_type()});
  declare("fabs", t.double_type(), {t.double_type()});
  declare("floor", t.double_type(), {t.double_type()});
}

void SemaContext::declare_functions() {
  for (const auto& fn : tu_.functions) {
    if (module_.find_function(fn.name) != nullptr)
      throw CompileError("redefinition of function " + fn.name, fn.line, 1);
    std::vector<const ir::Type*> params;
    for (const auto& p : fn.params) {
      const ir::Type* pt = resolve(p.type, fn.line);
      if (!pt->is_scalar())
        throw CompileError("parameter '" + p.name + "' must be scalar "
                           "(pass aggregates by pointer)", fn.line, 1);
      params.push_back(pt);
    }
    const ir::Type* ret = resolve(fn.return_type, fn.line);
    if (!ret->is_void() && !ret->is_scalar())
      throw CompileError("function must return void or a scalar", fn.line, 1);
    module_.create_function(types().func_type(ret, std::move(params)), fn.name);
  }
}

void SemaContext::define_globals() {
  for (const auto& g : tu_.globals) {
    const ir::Type* elem = resolve(g.type, g.line);
    if (!elem->is_scalar() && !elem->is_struct())
      throw CompileError("global '" + g.name + "' has unsupported type",
                         g.line, 1);
    const ir::Type* value_type = apply_dims(elem, g.array_dims);

    std::vector<std::uint8_t> bytes(value_type->size_in_bytes(), 0);
    if (!g.init.empty()) {
      if (!g.array_dims.empty()) {
        if (g.array_dims.size() > 1)
          throw CompileError("initializer lists are 1-D only", g.line, 1);
        if (g.init.size() > static_cast<std::size_t>(g.array_dims[0]))
          throw CompileError("too many initializers for " + g.name, g.line, 1);
        const std::uint64_t esize = elem->size_in_bytes();
        for (std::size_t i = 0; i < g.init.size(); ++i)
          encode_scalar(bytes, i * esize, elem, eval_const(*g.init[i]));
      } else {
        if (g.init.size() != 1)
          throw CompileError("scalar global takes one initializer", g.line, 1);
        encode_scalar(bytes, 0, elem, eval_const(*g.init[0]));
      }
    }
    module_.create_global(value_type, g.name, std::move(bytes));
  }
}

const ir::Type* SemaContext::apply_dims(
    const ir::Type* elem, const std::vector<std::int64_t>& dims) const {
  ir::TypeContext& types = module_.types();
  const ir::Type* out = elem;
  for (auto it = dims.rbegin(); it != dims.rend(); ++it)
    out = types.array_of(out, static_cast<std::uint64_t>(*it));
  return out;
}

const ir::Type* SemaContext::resolve(const AstType& t, int line) const {
  const ir::Type* base = nullptr;
  ir::TypeContext& types = module_.types();
  switch (t.base) {
    case BaseType::Void: base = types.void_type(); break;
    case BaseType::Char: base = types.int_type(8); break;
    case BaseType::Short: base = types.int_type(16); break;
    case BaseType::Int: base = types.int_type(32); break;
    case BaseType::Long: base = types.int_type(64); break;
    case BaseType::Double: base = types.double_type(); break;
    case BaseType::Struct:
      base = types.struct_by_name(t.struct_name);
      if (base == nullptr)
        throw CompileError("unknown struct " + t.struct_name, line, 1);
      break;
  }
  if (base->is_void() && t.pointer_depth > 0)
    throw CompileError("void* is not supported; use char*", line, 1);
  for (int i = 0; i < t.pointer_depth; ++i) base = types.ptr_to(base);
  return base;
}

unsigned SemaContext::field_index(const ir::Type* struct_type,
                                  const std::string& name, int line) const {
  auto it = struct_field_names_.find(struct_type);
  if (it == struct_field_names_.end())
    throw CompileError("member access on non-struct type", line, 1);
  for (unsigned i = 0; i < it->second.size(); ++i)
    if (it->second[i] == name) return i;
  throw CompileError("struct " + struct_type->struct_name() +
                         " has no field '" + name + "'",
                     line, 1);
}

const ir::Type* SemaContext::usual_arithmetic(const ir::Type* a,
                                              const ir::Type* b) const {
  ir::TypeContext& types = module_.types();
  if (a->is_double() || b->is_double()) return types.double_type();
  const unsigned bits = std::max({a->int_bits(), b->int_bits(), 32u});
  return types.int_type(bits);
}

bool SemaContext::implicitly_convertible(const ir::Type* from,
                                         const ir::Type* to) const {
  if (from == to) return true;
  if (from->is_int() && to->is_int()) return true;
  if (from->is_int() && to->is_double()) return true;
  if (from->is_double() && to->is_int()) return true;
  return false;
}

SemaContext::ConstValue SemaContext::eval_const(const Expr& e) const {
  switch (e.kind) {
    case ExprKind::IntLit: {
      ConstValue v;
      v.i = static_cast<std::int64_t>(e.int_value);
      return v;
    }
    case ExprKind::FloatLit: {
      ConstValue v;
      v.is_double = true;
      v.d = e.float_value;
      return v;
    }
    case ExprKind::Unary: {
      if (e.unary_op == UnaryOp::Neg) {
        ConstValue v = eval_const(*e.child(0));
        if (v.is_double)
          v.d = -v.d;
        else
          v.i = -v.i;
        return v;
      }
      break;
    }
    case ExprKind::SizeofType: {
      ConstValue v;
      v.i = static_cast<std::int64_t>(
          resolve(e.ast_type, e.line)->size_in_bytes());
      return v;
    }
    default:
      break;
  }
  throw CompileError("global initializers must be constant expressions",
                     e.line, 1);
}

void SemaContext::encode_scalar(std::vector<std::uint8_t>& bytes,
                                std::size_t offset, const ir::Type* type,
                                const ConstValue& v) const {
  std::uint64_t raw = 0;
  if (type->is_double()) {
    raw = bits_of(v.is_double ? v.d : static_cast<double>(v.i));
  } else if (type->is_int()) {
    raw = static_cast<std::uint64_t>(
        v.is_double ? static_cast<std::int64_t>(v.d) : v.i);
  } else {
    throw CompileError("unsupported global initializer target", 0, 0);
  }
  const std::size_t size = type->size_in_bytes();
  for (std::size_t b = 0; b < size; ++b)
    bytes.at(offset + b) = static_cast<std::uint8_t>(raw >> (8 * b));
}

}  // namespace faultlab::mc
