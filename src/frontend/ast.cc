#include "frontend/ast.h"

namespace faultlab::mc {

std::unique_ptr<Expr> make_expr(ExprKind kind, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->line = line;
  return e;
}

std::unique_ptr<Stmt> make_stmt(StmtKind kind, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->line = line;
  return s;
}

}  // namespace faultlab::mc
