// Pre-decoded micro-op traces for the IR interpreter's threaded fast path.
//
// A TraceBlock is a basic block decoded once into a flat array of
// micro-ops with every operand pre-resolved: constants are folded into
// immediate slots (including global addresses and double bit patterns),
// register/argument reads carry their index, type masks and sign widths
// are pre-looked-up, branch targets point straight at the successor
// TraceBlock, and getelementptr constant terms are folded into a single
// base offset at decode time. The array is strictly 1:1 with the block's
// instruction list (phi runs collapse into one PhiGroup op followed by
// Pad fillers), so `Snapshot::Frame::index` doubles as the micro-op index:
// side entry and side exit between the hooked slow path and the trace need
// no PC translation, and trap PCs stay exact.
//
// Decoding is lazy (first fast-path entry of a block) and cached per
// interpreter instance; the decoder never changes observable semantics —
// an instruction it cannot pre-resolve poisons its block, which then runs
// through the slow path forever. Fault hooks are never compiled into a
// trace: the interpreter only enters the fast path while no hook can
// observe execution (see interpreter.cc's dispatcher).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/function.h"
#include "ir/module.h"

namespace faultlab::machine {
class GlobalLayout;
}

namespace faultlab::vm {

/// X-macro op inventory: the VOp enum and the threaded dispatcher's
/// computed-goto label table are both generated from this list, so the
/// two can never fall out of order.
///
/// Comparisons and casts are split per predicate/kind so the dispatcher
/// jumps straight to a branch-free handler. MaskCast covers
/// trunc/zext/bitcast/ptrtoint/inttoptr, whose semantics all reduce to one
/// pre-folded AND. Alloca only advances (its address is pre-assigned at
/// frame setup); PhiGroup executes the block's whole leading phi run
/// against prev_block; Pad fills the 1:1 slots under a PhiGroup and is
/// never executed (defensively side-exits if reached).
#define FAULTLAB_VM_UOPS(X)                                             \
  X(Add) X(Sub) X(Mul) X(SDiv) X(UDiv) X(SRem) X(URem)                  \
  X(And) X(Or) X(Xor) X(Shl) X(LShr) X(AShr)                            \
  X(FAdd) X(FSub) X(FMul) X(FDiv)                                       \
  X(IcmpEq) X(IcmpNe) X(IcmpSlt) X(IcmpSle) X(IcmpSgt) X(IcmpSge)       \
  X(IcmpUlt) X(IcmpUle) X(IcmpUgt) X(IcmpUge)                           \
  X(FcmpOeq) X(FcmpOne) X(FcmpOlt) X(FcmpOle) X(FcmpOgt) X(FcmpOge)     \
  X(MaskCast) X(SExt) X(FpToSi) X(SiToFp)                               \
  X(Select) X(Alloca) X(Load) X(Store) X(Gep)                           \
  X(PhiGroup) X(Pad)                                                    \
  X(Br) X(BrCond) X(Ret)                                                \
  X(Call) X(CallBuiltin)

enum class VOp : std::uint8_t {
#define FAULTLAB_VM_UOP_ENUM(name) name,
  FAULTLAB_VM_UOPS(FAULTLAB_VM_UOP_ENUM)
#undef FAULTLAB_VM_UOP_ENUM
};

/// One pre-resolved operand read.
struct VSlot {
  enum class Kind : std::uint8_t { Imm, Reg, Arg };
  Kind kind = Kind::Imm;
  std::uint32_t index = 0;  ///< register id / argument index
  std::uint64_t imm = 0;
};

/// Variable getelementptr term: addr += sext(read, bits) * scale.
struct GepTerm {
  VSlot slot;
  std::int64_t scale = 0;
  std::uint8_t bits = 64;
};

/// One incoming edge of a phi.
struct PhiEdge {
  const ir::BasicBlock* pred = nullptr;
  VSlot slot;
};

/// One phi of a PhiGroup: where its edges live and where the result goes.
struct PhiEntry {
  std::uint32_t dst = 0;
  std::uint64_t mask = 0;
  std::uint32_t edges_at = 0;
  std::uint32_t edges_n = 0;
};

struct TraceBlock;
struct TraceFunction;

/// One decoded micro-op. Deliberately flat: every field a handler needs is
/// a direct load off this struct or the owning block's side pools.
struct VUOp {
  VOp op = VOp::Pad;
  std::uint8_t bits = 0;    ///< operand int width (sign ops, shifts, sext)
  std::uint16_t n = 0;      ///< pool element count (args / gep terms / phis)
  std::uint32_t dst = 0;    ///< result register id
  std::uint32_t pool = 0;   ///< offset into the owning block's pool
  std::uint32_t size = 0;   ///< load/store access size in bytes
  std::uint64_t mask = 0;   ///< result mask (type_mask of the def)
  std::uint64_t imm = 0;    ///< operand mask (binaries/icmp) / gep base offset
  VSlot a, b, c;
  const ir::BasicBlock* bb0 = nullptr;  ///< branch targets (IR view)
  const ir::BasicBlock* bb1 = nullptr;
  TraceBlock* tb0 = nullptr;  ///< branch targets (trace view)
  TraceBlock* tb1 = nullptr;
  const ir::Instruction* instr = nullptr;  ///< call site (Call/CallBuiltin)
  const ir::Function* callee = nullptr;
  TraceFunction* callee_tf = nullptr;
};

/// A decoded basic block: micro-ops (1:1 with the block's instructions)
/// plus the side pools the variable-length ops index into.
struct TraceBlock {
  enum class State : std::uint8_t { Empty, Ready, Poisoned };
  State state = State::Empty;
  const ir::BasicBlock* block = nullptr;
  std::vector<VUOp> uops;
  std::vector<GepTerm> gep_terms;
  std::vector<VSlot> call_args;
  std::vector<PhiEntry> phi_entries;
  std::vector<PhiEdge> phi_edges;
};

/// Frame-setup plan entry: one alloca's register and layout parameters, in
/// program order (the slow path's dynamic_cast walk, done once).
struct AllocaPlan {
  std::uint32_t reg = 0;
  std::uint64_t align = 1;
  std::uint64_t size = 0;
};

/// Per-function scaffolding: frame layout plan plus the block trace slots.
struct TraceFunction {
  const ir::Function* fn = nullptr;
  std::uint64_t frame_size = 0;  ///< allocas + padding, rounded to 16
  std::size_t num_instructions = 0;
  std::vector<AllocaPlan> allocas;
  /// Parallel to fn->blocks() (stable: sized once, never grown).
  std::vector<TraceBlock> blocks;
  std::unordered_map<const ir::BasicBlock*, std::uint32_t> block_index;

  TraceBlock* slot_for(const ir::BasicBlock* bb) {
    const auto it = block_index.find(bb);
    return it == block_index.end() ? nullptr : &blocks[it->second];
  }
};

/// Lazy per-interpreter trace cache. Not thread-safe: each resident
/// interpreter context owns one (snapshots never carry trace pointers, so
/// caches stay private to their executor).
class TraceCache {
 public:
  explicit TraceCache(const machine::GlobalLayout& layout);
  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;
  ~TraceCache();  // folds this cache's block count out of the global gauge

  /// Scaffolding for `fn` (alloca plan, block table), built on first use.
  TraceFunction& function(const ir::Function& fn);

  /// Decoded trace for `bb`, decoding on first request. Returns nullptr
  /// when the block cannot be traced (runs via the slow path instead).
  TraceBlock* block(TraceFunction& tf, const ir::BasicBlock* bb);

 private:
  void decode(TraceFunction& tf, TraceBlock& tb);

  const machine::GlobalLayout& layout_;
  std::unordered_map<const ir::Function*, std::unique_ptr<TraceFunction>>
      functions_;
  std::uint64_t decoded_ = 0;
};

}  // namespace faultlab::vm
