#include "vm/interpreter.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "machine/dispatch.h"
#include "obs/metrics.h"
#include "support/bitutil.h"
#include "vm/trace.h"

// Computed-goto threaded dispatch for the fast path; define
// FAULTLAB_NO_COMPUTED_GOTO (or build with a compiler lacking the
// extension) to fall back to a portable switch with identical semantics.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(FAULTLAB_NO_COMPUTED_GOTO)
#define FAULTLAB_VM_COMPUTED_GOTO 1
#else
#define FAULTLAB_VM_COMPUTED_GOTO 0
#endif

namespace faultlab::vm {

namespace {

using ir::Opcode;
using machine::Layout;
using machine::TrapException;
using machine::TrapKind;

std::uint64_t type_mask(const ir::Type* t) {
  return faultlab::low_mask(t->register_bits());
}

/// Instructions actually executed per run()/run_from() call (the delta, not
/// the snapshot-primed absolute count), log2-bucketed in the global
/// registry. One handle lookup per process; one branch when disabled.
void record_run_instructions(std::uint64_t delta) {
  if (!obs::metrics_enabled()) return;
  static obs::Histogram histogram =
      obs::Registry::global().histogram("vm.run_instructions");
  histogram.record(delta);
}

}  // namespace

// Execution keeps the call-frame stack as explicit data (frames_) instead
// of recursing on the native stack, so the complete interpreter state can
// be captured into a Snapshot between any two dynamic instructions and
// resumed later — the basis of checkpointed fault-injection trials.
//
// Two dispatch paths share that state. The *slow* path (slow_step) is the
// original hooked switch loop: snapshot capture, timeout accounting, hook
// re-arm checks and callbacks at every instruction. The *fast* path
// (fast_run) executes pre-decoded micro-op traces (vm/trace.h) with no
// per-instruction hook or snapshot machinery at all; the dispatcher
// (exec_loop) only enters it while no hook can observe execution, and
// pre-computes the dynamic-instruction index where the fast path must
// side-exit so timeouts, snapshot points and hook re-arms land on exactly
// the same instruction as a pure slow-path run. FAULTLAB_DISPATCH=switch
// pins the slow path for A/B equivalence checks.
class Interpreter::Impl {
 public:
  using Frame = Snapshot::Frame;

  Impl(const ir::Module& module, const machine::GlobalLayout& layout)
      : module_(module), layout_(layout), runtime_(memory_), cache_(layout) {}

  /// Arms the per-run parameters. The impl itself is resident — memory,
  /// frame and register storage persist between runs so consecutive
  /// restores stay on the delta path and reuse allocations.
  void prepare(ExecHook* hook, const RunLimits& limits) {
    hook_ = hook;
    live_hook_ = nullptr;
    limits_ = limits;
    next_snapshot_at_ = 0;
    mode_ = machine::dispatch_mode();
  }

  RunResult run(const std::string& entry) {
    const ir::Function* main_fn = module_.find_function(entry);
    if (main_fn == nullptr || main_fn->is_builtin())
      throw std::invalid_argument("no such entry function: " + entry);

    // Fresh image: releasing the mappings also disarms delta tracking, so
    // a later run_from() knows to fall back to a full restore.
    memory_.reset();
    runtime_.reset();
    frames_.clear();
    executed_ = 0;
    next_frame_id_ = 1;
    layout_.materialize(memory_);
    memory_.map_range(Layout::kStackLimit, Layout::kStackSize);
    sp_ = Layout::kStackTop;
    push_frame(*main_fn, {}, nullptr, 0);
    return drive();
  }

  RunResult run_from(const Snapshot& snapshot) {
    const machine::Memory::RestoreStats restore = restore_from(snapshot);
    // Snapshots already past this run's budget time out on the next
    // instruction, matching where the non-checkpointed run would stop.
    RunResult result = drive();
    result.restored_pages = restore.pages;
    result.delta_restored = restore.delta;
    return result;
  }

  /// run_from()'s restore half: rebuilds the resident execution state from
  /// `snapshot` without running anything. run_lockstep() restores every
  /// lane through this before entering the shared pack loop.
  machine::Memory::RestoreStats restore_from(const Snapshot& snapshot) {
    assert(!snapshot.frames.empty() && "snapshot of a finished run");
    const machine::Memory::RestoreStats restore =
        memory_.restore_delta(snapshot.memory);
    runtime_.restore(snapshot.runtime);
    // Copy-assign reuses the resident vectors' capacity (including each
    // frame's register file), so only the state that actually ran since
    // the last restore gets rewritten/reallocated.
    frames_ = snapshot.frames;
    sp_ = snapshot.sp;
    executed_ = snapshot.executed;
    next_frame_id_ = snapshot.next_frame_id;
    return restore;
  }

  /// Runs `count` restored, prepared lane impls to completion in lockstep.
  /// Every lane must already stand at the exact restore point that
  /// restore_from(snapshot) produces. results[i] receives the lane's
  /// RunResult (restore provenance is filled in by the caller).
  static void pack_run(Impl* const* lanes, std::size_t count,
                       RunResult* results);

 private:
  RunResult drive() {
    if (limits_.snapshot_stride != 0)
      next_snapshot_at_ = executed_ + limits_.snapshot_stride;
    return resume_finish();
  }

  /// Runs the already-positioned state to completion: drive() without the
  /// snapshot-stride priming. Lanes masked off a pack finish through this.
  RunResult resume_finish() {
    const ir::Function* entry_fn = frames_.front().function;
    try {
      const std::uint64_t ret = exec_loop();
      return exit_fill(entry_fn, ret);
    } catch (const TrapException& trap) {
      return trap_fill(trap);
    } catch (const machine::TimeoutException&) {
      return timeout_fill();
    }
  }

  RunResult exit_fill(const ir::Function* entry_fn, std::uint64_t raw) {
    RunResult result;
    const ir::Type* rt = entry_fn->return_type();
    result.exit_value = rt->is_int() ? sign_extend(raw, rt->int_bits())
                                     : static_cast<std::int64_t>(raw);
    return finish_common(std::move(result));
  }

  RunResult trap_fill(const TrapException& trap) {
    RunResult result;
    result.trapped = true;
    result.trap = trap.kind();
    result.trap_address = trap.address();
    // The frame stack is intact when the exception reaches here, so the
    // innermost frame still points at the instruction that trapped
    // (indices advance only after an instruction completes; the fast
    // paths re-sync frame.index before resolving the trap).
    if (!frames_.empty()) {
      const Snapshot::Frame& top = frames_.back();
      if (top.block != nullptr && top.index < top.block->size())
        result.trap_pc = top.block->instr(top.index)->id();
    }
    return finish_common(std::move(result));
  }

  RunResult timeout_fill() {
    RunResult result;
    result.timed_out = true;
    return finish_common(std::move(result));
  }

  RunResult finish_common(RunResult result) {
    result.dynamic_instructions = executed_;
    result.output = runtime_.output();
    return result;
  }

  std::uint64_t read_operand(Frame& frame, const ir::Instruction& user,
                             const ir::Value* v) {
    switch (v->vkind()) {
      case ir::ValueKind::ConstantInt:
        return static_cast<const ir::ConstantInt*>(v)->raw();
      case ir::ValueKind::ConstantDouble:
        return bits_of(static_cast<const ir::ConstantDouble*>(v)->value());
      case ir::ValueKind::ConstantNull:
        return 0;
      case ir::ValueKind::GlobalVariable:
        return layout_.address_of(static_cast<const ir::GlobalVariable*>(v));
      case ir::ValueKind::Argument: {
        const auto* arg = static_cast<const ir::Argument*>(v);
        if (live_hook_ != nullptr)
          live_hook_->on_argument_read(frame.id, arg->index(), user);
        return frame.args[arg->index()];
      }
      case ir::ValueKind::Instruction: {
        const auto* def = static_cast<const ir::Instruction*>(v);
        if (live_hook_ != nullptr)
          live_hook_->on_operand_read({frame.id, def}, user);
        return frame.regs[def->id()];
      }
    }
    return 0;
  }

  [[noreturn]] static void trap(TrapKind kind, std::uint64_t addr,
                                const char* detail = "") {
    throw TrapException(kind, addr, detail);
  }

  void bump_instruction_count() {
    if (++executed_ > limits_.max_instructions)
      throw machine::TimeoutException();
  }

  void push_frame(const ir::Function& fn, std::vector<std::uint64_t> args,
                  const ir::CallInst* site, std::uint64_t caller_frame) {
    if (frames_.size() >= kMaxCallDepth)
      trap(TrapKind::StackOverflow, sp_, "call depth");

    Frame frame;
    frame.function = &fn;
    frame.id = next_frame_id_++;
    frame.args = std::move(args);
    if (live_hook_ != nullptr && site != nullptr)
      live_hook_->on_call(*site, caller_frame, frame.id);
    frame.regs.assign(fn.num_instructions(), 0);

    // Allocate the frame's stack slots (allocas) in one adjustment, the way
    // a real prologue would.
    std::uint64_t frame_size = 0;
    std::vector<const ir::AllocaInst*> allocas;
    for (const auto& bb : fn.blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (auto* al = dynamic_cast<const ir::AllocaInst*>(instr.get())) {
          const auto align = std::max<std::uint64_t>(al->allocated_type()->alignment(), 1);
          frame_size = (frame_size + align - 1) / align * align;
          frame_size += al->allocated_type()->size_in_bytes();
          allocas.push_back(al);
        }
      }
    }
    frame_size = (frame_size + 15) / 16 * 16;
    if (sp_ < Layout::kStackLimit + frame_size)
      trap(TrapKind::StackOverflow, sp_);
    frame.saved_sp = sp_;
    sp_ -= frame_size;
    std::uint64_t cursor = sp_;
    for (const ir::AllocaInst* al : allocas) {
      const auto align = std::max<std::uint64_t>(al->allocated_type()->alignment(), 1);
      cursor = (cursor + align - 1) / align * align;
      frame.regs[al->id()] = cursor;
      cursor += al->allocated_type()->size_in_bytes();
    }

    frame.block = fn.entry();
    frame.prev_block = nullptr;
    frame.index = 0;
    frame.call_site = site;
    frames_.push_back(std::move(frame));
  }

  /// Fast-path twin of push_frame: identical trap order, frame layout and
  /// id consumption, with the alloca walk replaced by the function's
  /// pre-computed plan. Only runs hook-free (no on_call callout).
  void push_frame_fast(TraceFunction& tf, std::vector<std::uint64_t> args,
                       const ir::CallInst* site) {
    if (frames_.size() >= kMaxCallDepth)
      trap(TrapKind::StackOverflow, sp_, "call depth");
    Frame frame;
    frame.function = tf.fn;
    frame.id = next_frame_id_++;
    frame.args = std::move(args);
    frame.regs.assign(tf.num_instructions, 0);
    if (sp_ < Layout::kStackLimit + tf.frame_size)
      trap(TrapKind::StackOverflow, sp_);
    frame.saved_sp = sp_;
    sp_ -= tf.frame_size;
    std::uint64_t cursor = sp_;
    for (const AllocaPlan& al : tf.allocas) {
      cursor = (cursor + al.align - 1) / al.align * al.align;
      frame.regs[al.reg] = cursor;
      cursor += al.size;
    }
    frame.block = tf.fn->entry();
    frame.prev_block = nullptr;
    frame.index = 0;
    frame.call_site = site;
    frames_.push_back(std::move(frame));
  }

  void maybe_snapshot() {
    if (next_snapshot_at_ == 0 || executed_ < next_snapshot_at_ ||
        !limits_.snapshot_sink)
      return;
    Snapshot snap;
    snap.frames = frames_;
    snap.sp = sp_;
    snap.executed = executed_;
    snap.next_frame_id = next_frame_id_;
    snap.memory = memory_.snapshot();
    snap.runtime = runtime_.save();
    next_snapshot_at_ = executed_ + limits_.snapshot_stride;
    limits_.snapshot_sink(std::move(snap));
  }

  /// Runs the frame stack to completion; returns the entry's return value.
  /// Switch mode is the pure historical loop; threaded mode alternates
  /// trace execution with single hooked slow steps at window boundaries.
  std::uint64_t exec_loop() {
    std::uint64_t ret = 0;
    if (mode_ == machine::DispatchMode::Switch) {
      while (!slow_step(&ret)) {
      }
      return ret;
    }
    while (true) {
      std::uint64_t stop = limits_.max_instructions;
      if (fast_eligible(&stop) && fast_run(stop, &ret)) return ret;
      if (slow_step(&ret)) return ret;
    }
  }

  /// Whether the fast path may run right now, and — via `stop` — up to
  /// which dynamic-instruction count. The slow path's per-instruction
  /// checks all fire at positions known in advance:
  ///  * timeout: the bump of instruction max+1 throws, so the fast loop
  ///    may execute while executed_ < max;
  ///  * hook re-arm: a dormant hook re-arms on the instruction that brings
  ///    executed_ to rearm_at, which must run hooked → stop at rearm_at-1;
  ///  * snapshots: captured before the instruction that has
  ///    executed_ >= next_snapshot_at_ → stop there.
  /// One slow step at the boundary then performs the actual throw /
  /// re-arm / capture with unchanged semantics.
  bool fast_eligible(std::uint64_t* stop) {
    if (hook_ != nullptr) {
      if (!hook_->detached()) return false;
      const std::uint64_t at = hook_->rearm_at();
      if (at == 0) {
        hook_ = nullptr;  // finally detached: same nulling as the slow loop
      } else {
        *stop = std::min(*stop, at - 1);
      }
    }
    if (next_snapshot_at_ != 0 && limits_.snapshot_sink)
      *stop = std::min(*stop, next_snapshot_at_);
    return executed_ < *stop;
  }

  /// One iteration of the hooked slow path. Returns true when the entry
  /// frame returned, with the raw return value in *ret.
  bool slow_step(std::uint64_t* ret) {
    maybe_snapshot();
    Frame& frame = frames_.back();
    const ir::Instruction& instr = *frame.block->instr(frame.index);
    bump_instruction_count();
    if (hook_ != nullptr && hook_->detached()) {
      const std::uint64_t at = hook_->rearm_at();
      if (at == 0) {
        hook_ = nullptr;  // rest of the run executes at unhooked speed
      } else if (executed_ >= at) {
        hook_->rearm();  // dormant hook reached its re-arm point
      }
    }
    // Dormant hooks (detached with a future rearm_at) are suppressed for
    // the whole instruction: live_hook_ gates every callback site below.
    live_hook_ = hook_ != nullptr && !hook_->detached() ? hook_ : nullptr;
    if (live_hook_ != nullptr) live_hook_->on_instruction(instr);

    switch (instr.opcode()) {
      case Opcode::Phi: {
        // Evaluate the whole phi group atomically against prev_block.
        std::size_t index = frame.index;
        std::vector<std::pair<const ir::Instruction*, std::uint64_t>> updates;
        while (true) {
          const auto& phi =
              static_cast<const ir::PhiInst&>(*frame.block->instr(index));
          const ir::Value* in = phi.value_for_block(frame.prev_block);
          assert(in != nullptr && "phi has no edge for predecessor");
          updates.emplace_back(&phi, read_operand(frame, phi, in));
          if (index + 1 >= frame.block->size() ||
              frame.block->instr(index + 1)->opcode() != Opcode::Phi)
            break;
          ++index;
          bump_instruction_count();
          if (live_hook_ != nullptr)
            live_hook_->on_instruction(*frame.block->instr(index));
        }
        for (auto& [phi, raw] : updates) set_result(frame, *phi, raw);
        frame.index = index + 1;
        return false;
      }
      case Opcode::Br: {
        const auto& br = static_cast<const ir::BranchInst&>(instr);
        const ir::BasicBlock* next;
        if (br.is_conditional()) {
          const std::uint64_t cond =
              read_operand(frame, instr, br.condition()) & 1;
          next = cond ? br.true_target() : br.false_target();
        } else {
          next = br.true_target();
        }
        frame.prev_block = frame.block;
        frame.block = next;
        frame.index = 0;
        return false;
      }
      case Opcode::Ret: {
        const auto& ret_inst = static_cast<const ir::RetInst&>(instr);
        const std::uint64_t raw =
            ret_inst.has_value() ? read_operand(frame, instr, ret_inst.value())
                                 : 0;
        sp_ = frame.saved_sp;
        const ir::Instruction* site = frame.call_site;
        frames_.pop_back();
        if (frames_.empty()) {
          *ret = raw;
          return true;
        }
        Frame& caller = frames_.back();
        if (site->has_result()) set_result(caller, *site, raw);
        ++caller.index;
        return false;
      }
      case Opcode::Store: {
        const std::uint64_t value =
            read_operand(frame, instr, instr.operand(0));
        const std::uint64_t addr =
            read_operand(frame, instr, instr.operand(1));
        const ir::Type* t = instr.operand(0)->type();
        const auto size = static_cast<unsigned>(t->size_in_bytes());
        if (live_hook_ != nullptr)
          live_hook_->on_memory_access(instr, addr, size, /*is_store=*/true);
        memory_.write(addr, size, value & type_mask(t));
        ++frame.index;
        return false;
      }
      case Opcode::Call: {
        const auto& call = static_cast<const ir::CallInst&>(instr);
        std::vector<std::uint64_t> args;
        args.reserve(call.num_args());
        for (unsigned i = 0; i < call.num_args(); ++i)
          args.push_back(read_operand(frame, instr, call.arg(i)));
        if (call.callee()->is_builtin()) {
          const std::uint64_t raw =
              runtime_.call_builtin(call.callee()->name(), args);
          if (instr.has_result()) set_result(frame, instr, raw);
          ++frame.index;
          return false;
        }
        const std::uint64_t caller_id = frame.id;
        // push_frame may reallocate frames_, invalidating `frame`; the
        // caller's index advances when the callee returns (Ret case).
        push_frame(*call.callee(), std::move(args), &call, caller_id);
        return false;
      }
      default: {
        const std::uint64_t raw = evaluate(frame, instr);
        set_result(frame, instr, raw);
        ++frame.index;
        return false;
      }
    }
  }

  /// Reads one pre-resolved operand slot (the fast path's hook-free
  /// read_operand).
  static std::uint64_t slot(const Frame& frame, const VSlot& s) {
    switch (s.kind) {
      case VSlot::Kind::Imm: return s.imm;
      case VSlot::Kind::Reg: return frame.regs[s.index];
      case VSlot::Kind::Arg: return frame.args[s.index];
    }
    return 0;
  }

  /// Executes decoded traces until `stop` (a dynamic-instruction count),
  /// a non-traceable block, or program exit. Returns true when the entry
  /// frame returned (value in *ret); false on a side exit back to the
  /// slow path, with every frame field re-synced so the slow loop (or a
  /// snapshot) sees exactly the state a pure slow run would have.
  bool fast_run(std::uint64_t stop, std::uint64_t* ret) {
    Frame* frame = &frames_.back();
    TraceFunction* tf = &cache_.function(*frame->function);
    TraceBlock* tb = cache_.block(*tf, frame->block);
    machine::DispatchCounters& dc = machine::dispatch_counters();
    std::size_t ip = frame->index;
    if (tb == nullptr || ip >= tb->uops.size()) {
      dc.trace_invalidations.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    dc.trace_hits.fetch_add(1, std::memory_order_relaxed);
    shadow_.clear();
    shadow_.push_back({tf, tb});
    try {
      const VUOp* u = nullptr;

#if FAULTLAB_VM_COMPUTED_GOTO
#define FAULTLAB_VM_UOP_LABEL(name) &&vm_lbl_##name,
      static const void* const kLabels[] = {
          FAULTLAB_VM_UOPS(FAULTLAB_VM_UOP_LABEL)};
#undef FAULTLAB_VM_UOP_LABEL
#define VM_OP(name) vm_lbl_##name:
#define VM_NEXT()                                      \
  do {                                                 \
    if (executed_ >= stop) goto vm_side_exit;          \
    u = &tb->uops[ip];                                 \
    ++executed_;                                       \
    goto* kLabels[static_cast<unsigned>(u->op)];       \
  } while (0)
      VM_NEXT();
#else
#define VM_OP(name) case VOp::name:
#define VM_NEXT() goto vm_dispatch
    vm_dispatch:
      if (executed_ >= stop) goto vm_side_exit;
      u = &tb->uops[ip];
      ++executed_;
      switch (u->op) {
#endif

      VM_OP(Add) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) + (slot(*frame, u->b) & m)) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(Sub) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) - (slot(*frame, u->b) & m)) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(Mul) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) * (slot(*frame, u->b) & m)) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(SDiv) {
        const std::uint64_t m = u->imm;
        const std::int64_t sa = sign_extend(slot(*frame, u->a) & m, u->bits);
        const std::int64_t sb = sign_extend(slot(*frame, u->b) & m, u->bits);
        if (sb == 0) trap(TrapKind::DivideByZero, 0);
        if (sb == -1 && sa == int_min_of(u->bits))
          trap(TrapKind::DivideByZero, 0, "division overflow");  // x86 #DE
        frame->regs[u->dst] = static_cast<std::uint64_t>(sa / sb) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(UDiv) {
        const std::uint64_t m = u->imm;
        const std::uint64_t a = slot(*frame, u->a) & m;
        const std::uint64_t b = slot(*frame, u->b) & m;
        if (b == 0) trap(TrapKind::DivideByZero, 0);
        frame->regs[u->dst] = (a / b) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(SRem) {
        const std::uint64_t m = u->imm;
        const std::int64_t sa = sign_extend(slot(*frame, u->a) & m, u->bits);
        const std::int64_t sb = sign_extend(slot(*frame, u->b) & m, u->bits);
        if (sb == 0) trap(TrapKind::DivideByZero, 0);
        if (sb == -1 && sa == int_min_of(u->bits))
          trap(TrapKind::DivideByZero, 0, "division overflow");  // x86 #DE
        frame->regs[u->dst] = static_cast<std::uint64_t>(sa % sb) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(URem) {
        const std::uint64_t m = u->imm;
        const std::uint64_t a = slot(*frame, u->a) & m;
        const std::uint64_t b = slot(*frame, u->b) & m;
        if (b == 0) trap(TrapKind::DivideByZero, 0);
        frame->regs[u->dst] = (a % b) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(And) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) & (slot(*frame, u->b) & m)) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(Or) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) | (slot(*frame, u->b) & m)) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(Xor) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) ^ (slot(*frame, u->b) & m)) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(Shl) {
        const std::uint64_t m = u->imm;
        const std::uint64_t a = slot(*frame, u->a) & m;
        const unsigned amount = shift_amount(slot(*frame, u->b) & m, u->bits);
        frame->regs[u->dst] = (a << amount) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(LShr) {
        const std::uint64_t m = u->imm;
        const std::uint64_t a = slot(*frame, u->a) & m;
        const unsigned amount = shift_amount(slot(*frame, u->b) & m, u->bits);
        frame->regs[u->dst] = (a >> amount) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(AShr) {
        const std::uint64_t m = u->imm;
        const std::int64_t sa = sign_extend(slot(*frame, u->a) & m, u->bits);
        const unsigned amount = shift_amount(slot(*frame, u->b) & m, u->bits);
        frame->regs[u->dst] =
            static_cast<std::uint64_t>(sa >> amount) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FAdd) {
        frame->regs[u->dst] = bits_of(double_of(slot(*frame, u->a)) +
                                      double_of(slot(*frame, u->b))) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FSub) {
        frame->regs[u->dst] = bits_of(double_of(slot(*frame, u->a)) -
                                      double_of(slot(*frame, u->b))) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FMul) {
        frame->regs[u->dst] = bits_of(double_of(slot(*frame, u->a)) *
                                      double_of(slot(*frame, u->b))) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FDiv) {
        // IEEE: inf/NaN, no trap.
        frame->regs[u->dst] = bits_of(double_of(slot(*frame, u->a)) /
                                      double_of(slot(*frame, u->b))) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpEq) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) == (slot(*frame, u->b) & m) ? 1 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpNe) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) != (slot(*frame, u->b) & m) ? 1 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpSlt) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            (sign_extend(slot(*frame, u->a) & m, u->bits) <
                     sign_extend(slot(*frame, u->b) & m, u->bits)
                 ? 1
                 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpSle) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            (sign_extend(slot(*frame, u->a) & m, u->bits) <=
                     sign_extend(slot(*frame, u->b) & m, u->bits)
                 ? 1
                 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpSgt) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            (sign_extend(slot(*frame, u->a) & m, u->bits) >
                     sign_extend(slot(*frame, u->b) & m, u->bits)
                 ? 1
                 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpSge) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            (sign_extend(slot(*frame, u->a) & m, u->bits) >=
                     sign_extend(slot(*frame, u->b) & m, u->bits)
                 ? 1
                 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpUlt) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) < (slot(*frame, u->b) & m) ? 1 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpUle) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) <= (slot(*frame, u->b) & m) ? 1 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpUgt) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) > (slot(*frame, u->b) & m) ? 1 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(IcmpUge) {
        const std::uint64_t m = u->imm;
        frame->regs[u->dst] =
            ((slot(*frame, u->a) & m) >= (slot(*frame, u->b) & m) ? 1 : 0) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FcmpOeq) {
        frame->regs[u->dst] = (double_of(slot(*frame, u->a)) ==
                                       double_of(slot(*frame, u->b))
                                   ? 1
                                   : 0) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FcmpOne) {
        const double a = double_of(slot(*frame, u->a));
        const double b = double_of(slot(*frame, u->b));
        frame->regs[u->dst] = ((a < b || a > b) ? 1 : 0) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FcmpOlt) {
        frame->regs[u->dst] = (double_of(slot(*frame, u->a)) <
                                       double_of(slot(*frame, u->b))
                                   ? 1
                                   : 0) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FcmpOle) {
        frame->regs[u->dst] = (double_of(slot(*frame, u->a)) <=
                                       double_of(slot(*frame, u->b))
                                   ? 1
                                   : 0) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FcmpOgt) {
        frame->regs[u->dst] = (double_of(slot(*frame, u->a)) >
                                       double_of(slot(*frame, u->b))
                                   ? 1
                                   : 0) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FcmpOge) {
        frame->regs[u->dst] = (double_of(slot(*frame, u->a)) >=
                                       double_of(slot(*frame, u->b))
                                   ? 1
                                   : 0) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(MaskCast) {
        frame->regs[u->dst] = slot(*frame, u->a) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(SExt) {
        frame->regs[u->dst] = static_cast<std::uint64_t>(sign_extend(
                                  slot(*frame, u->a), u->bits)) &
                              u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(FpToSi) {
        const double d = double_of(slot(*frame, u->a));
        std::int64_t out;
        // cvttsd2si semantics: out-of-range / NaN -> "integer indefinite".
        if (std::isnan(d) || d >= 9.2233720368547758e18 ||
            d < -9.2233720368547758e18) {
          out = std::numeric_limits<std::int64_t>::min();
        } else {
          out = static_cast<std::int64_t>(d);
        }
        frame->regs[u->dst] = static_cast<std::uint64_t>(out) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(SiToFp) {
        frame->regs[u->dst] =
            bits_of(static_cast<double>(
                sign_extend(slot(*frame, u->a), u->bits))) &
            u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(Select) {
        // Both arms are read (data dependences, not control) — matching
        // the slow path, though reads have no side effects unhooked.
        const std::uint64_t cond = slot(*frame, u->a) & 1;
        const std::uint64_t tv = slot(*frame, u->b);
        const std::uint64_t fv = slot(*frame, u->c);
        frame->regs[u->dst] = (cond ? tv : fv) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(Alloca) {
        // Address pre-assigned at frame setup; re-mask like set_result.
        frame->regs[u->dst] &= u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(Load) {
        frame->regs[u->dst] =
            memory_.read(slot(*frame, u->a), u->size) & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(Store) {
        const std::uint64_t value = slot(*frame, u->a);
        memory_.write(slot(*frame, u->b), u->size, value & u->mask);
        ++ip;
        VM_NEXT();
      }
      VM_OP(Gep) {
        std::uint64_t addr = slot(*frame, u->a) + u->imm;
        const GepTerm* term = tb->gep_terms.data() + u->pool;
        for (std::uint16_t k = 0; k < u->n; ++k, ++term)
          addr += static_cast<std::uint64_t>(
              sign_extend(slot(*frame, term->slot), term->bits) *
              term->scale);
        frame->regs[u->dst] = addr & u->mask;
        ++ip;
        VM_NEXT();
      }
      VM_OP(PhiGroup) {
        // All incoming values are read (and counted) before any write,
        // exactly like the slow path's update list: a timeout mid-group
        // leaves every phi register untouched.
        phi_scratch_.clear();
        const PhiEntry* entries = tb->phi_entries.data() + u->pool;
        for (std::uint16_t k = 0; k < u->n; ++k) {
          if (k != 0 && ++executed_ > limits_.max_instructions)
            throw machine::TimeoutException();
          const PhiEntry& e = entries[k];
          const PhiEdge* edge = tb->phi_edges.data() + e.edges_at;
          std::uint64_t v = 0;
          bool found = false;
          for (std::uint32_t j = 0; j < e.edges_n; ++j, ++edge) {
            if (edge->pred == frame->prev_block) {
              v = slot(*frame, edge->slot);
              found = true;
              break;
            }
          }
          assert(found && "phi has no edge for predecessor");
          (void)found;
          phi_scratch_.push_back(v);
        }
        for (std::uint16_t k = 0; k < u->n; ++k)
          frame->regs[entries[k].dst] = phi_scratch_[k] & entries[k].mask;
        ip += u->n;
        VM_NEXT();
      }
      VM_OP(Pad) {
        // Unreachable by construction (PhiGroup jumps past its pads);
        // defensively hand the state to the slow path. The bump this
        // dispatch did must be undone: the op executed nothing.
        --executed_;
        goto vm_side_exit;
      }
      VM_OP(Br) {
        frame->prev_block = frame->block;
        frame->block = u->bb0;
        ip = 0;
        TraceBlock* nt = u->tb0;
        if (nt->state != TraceBlock::State::Ready) {
          nt = cache_.block(*tf, u->bb0);
          if (nt == nullptr) goto vm_side_exit;
        }
        tb = nt;
        shadow_.back().second = tb;
        VM_NEXT();
      }
      VM_OP(BrCond) {
        const std::uint64_t cond = slot(*frame, u->a) & 1;
        const ir::BasicBlock* bb = cond ? u->bb0 : u->bb1;
        TraceBlock* nt = cond ? u->tb0 : u->tb1;
        frame->prev_block = frame->block;
        frame->block = bb;
        ip = 0;
        if (nt->state != TraceBlock::State::Ready) {
          nt = cache_.block(*tf, bb);
          if (nt == nullptr) goto vm_side_exit;
        }
        tb = nt;
        shadow_.back().second = tb;
        VM_NEXT();
      }
      VM_OP(Ret) {
        const std::uint64_t raw = u->n != 0 ? slot(*frame, u->a) : 0;
        sp_ = frame->saved_sp;
        const ir::Instruction* site = frame->call_site;
        frames_.pop_back();
        shadow_.pop_back();
        if (frames_.empty()) {
          *ret = raw;
          return true;
        }
        frame = &frames_.back();
        if (site->has_result())
          frame->regs[site->id()] = raw & type_mask(site->type());
        ++frame->index;
        ip = frame->index;
        if (shadow_.empty()) {
          // Returned past the fast-entry frame: re-resolve the caller's
          // trace (it was entered before this fast run began).
          tf = &cache_.function(*frame->function);
          TraceBlock* nt = cache_.block(*tf, frame->block);
          if (nt == nullptr || ip >= nt->uops.size()) goto vm_side_exit;
          tb = nt;
          shadow_.push_back({tf, tb});
        } else {
          tf = shadow_.back().first;
          tb = shadow_.back().second;
        }
        VM_NEXT();
      }
      VM_OP(Call) {
        frame->index = ip;  // caller resumes via ++index at Ret
        std::vector<std::uint64_t> args;
        args.reserve(u->n);
        const VSlot* arg_slots = tb->call_args.data() + u->pool;
        for (std::uint16_t k = 0; k < u->n; ++k)
          args.push_back(slot(*frame, arg_slots[k]));
        push_frame_fast(*u->callee_tf, std::move(args),
                        static_cast<const ir::CallInst*>(u->instr));
        frame = &frames_.back();
        tf = u->callee_tf;
        TraceBlock* nt = cache_.block(*tf, tf->fn->entry());
        ip = 0;
        if (nt == nullptr) goto vm_side_exit;
        tb = nt;
        shadow_.push_back({tf, tb});
        VM_NEXT();
      }
      VM_OP(CallBuiltin) {
        builtin_args_.clear();
        const VSlot* arg_slots = tb->call_args.data() + u->pool;
        for (std::uint16_t k = 0; k < u->n; ++k)
          builtin_args_.push_back(slot(*frame, arg_slots[k]));
        const std::uint64_t raw =
            runtime_.call_builtin(u->callee->name(), builtin_args_);
        if (u->instr->has_result())
          frame->regs[u->dst] = raw & u->mask;
        ++ip;
        VM_NEXT();
      }

#if !FAULTLAB_VM_COMPUTED_GOTO
        default:
          goto vm_side_exit;
      }
#endif
#undef VM_OP
#undef VM_NEXT

    vm_side_exit:
      frame->index = ip;
      dc.trace_invalidations.fetch_add(1, std::memory_order_relaxed);
      return false;
    } catch (...) {
      // Traps unwinding out of the fast loop re-sync the top frame so
      // drive() resolves the same trap PC a slow-path run reports (frame
      // indices only advance after an instruction completes).
      if (!frames_.empty()) frames_.back().index = ip;
      throw;
    }
  }

  // -- lockstep lane pack ------------------------------------------------
  //
  // All active lanes of a pack share one structural position — call-frame
  // depth, current block, instruction index, and phi predecessor — and one
  // executed-instruction count: they were restored from the same snapshot
  // and step together. Frame layout, the stack pointer, and call structure
  // are pure control state, so they stay identical across lanes until a
  // fault actually changes a branch decision; only register and memory
  // *values* differ. The pack fast loop fetches each micro-op once from
  // the leader's trace cache and applies its body to every lane; armed
  // windows take pack_slow_step (each lane's own hooked slow_step, with
  // full callback semantics), and any lane whose control flow leaves the
  // leader's path is masked off and finishes alone on the historical
  // single-lane path.

  /// Drops lanes flagged in `dead` from the active set.
  static void pack_compact(std::vector<Impl*>& act,
                           std::vector<std::size_t>& slots, const char* dead) {
    std::size_t out = 0;
    for (std::size_t j = 0; j < act.size(); ++j) {
      if (dead[j]) continue;
      act[out] = act[j];
      slots[out] = slots[j];
      ++out;
    }
    act.resize(out);
    slots.resize(out);
  }

  /// Structural-position equality: the lockstep invariant. prev_block is
  /// part of the tuple because phi evaluation reads through it.
  static bool pack_same_pos(const Impl& a, const Impl& b) {
    if (a.frames_.size() != b.frames_.size()) return false;
    const Frame& fa = a.frames_.back();
    const Frame& fb = b.frames_.back();
    return fa.block == fb.block && fa.index == fb.index &&
           fa.prev_block == fb.prev_block;
  }

  /// Masks off every running lane whose position differs from the leader's
  /// and finishes it solo. `base` is the shared snapshot's executed count
  /// (for the divergence-offset histogram).
  static void pack_resolve(std::vector<Impl*>& act,
                           std::vector<std::size_t>& slots, RunResult* results,
                           std::uint64_t base) {
    if (act.size() <= 1) return;
    char dead[machine::kMaxLanes] = {};
    std::uint64_t masked = 0;
    for (std::size_t j = 1; j < act.size(); ++j) {
      Impl& m = *act[j];
      if (pack_same_pos(*act[0], m)) continue;
      machine::record_pack_divergence_offset(m.executed_ - base);
      results[slots[j]] = m.resume_finish();
      dead[j] = 1;
      ++masked;
    }
    if (masked == 0) return;
    machine::pack_counters().divergences.fetch_add(masked,
                                                   std::memory_order_relaxed);
    pack_compact(act, slots, dead);
  }

  /// fast_eligible across the pack: every lane's hook must be gone or
  /// dormant, and the nearest re-arm point clamps the shared stop.
  static bool pack_fast_eligible(std::vector<Impl*>& act,
                                 std::uint64_t* stop) {
    for (Impl* m : act) {
      if (m->hook_ == nullptr) continue;
      if (!m->hook_->detached()) return false;
      const std::uint64_t at = m->hook_->rearm_at();
      if (at == 0)
        m->hook_ = nullptr;  // finally detached: same nulling as slow loop
      else
        *stop = std::min(*stop, at - 1);
    }
    // pack_run never engages with a snapshot sink armed, so the
    // next_snapshot_at_ clamp from the single-lane path is moot here.
    return act[0]->executed_ < *stop;
  }

  /// One hooked slow step per active lane (boundary instructions: re-arm
  /// points, injection windows, timeouts), then a divergence check.
  static void pack_slow_step(std::vector<Impl*>& act,
                             std::vector<std::size_t>& slots,
                             RunResult* results, std::uint64_t base) {
    char dead[machine::kMaxLanes] = {};
    bool any_dead = false;
    for (std::size_t j = 0; j < act.size(); ++j) {
      Impl& m = *act[j];
      const ir::Function* entry_fn = m.frames_.front().function;
      std::uint64_t raw = 0;
      try {
        if (m.slow_step(&raw)) {
          results[slots[j]] = m.exit_fill(entry_fn, raw);
          dead[j] = 1;
          any_dead = true;
        }
      } catch (const TrapException& trap) {
        results[slots[j]] = m.trap_fill(trap);
        dead[j] = 1;
        any_dead = true;
      } catch (const machine::TimeoutException&) {
        results[slots[j]] = m.timeout_fill();
        dead[j] = 1;
        any_dead = true;
      }
    }
    if (any_dead) pack_compact(act, slots, dead);
    pack_resolve(act, slots, results, base);
  }

  /// The pack fast loop: one fetch + dispatch per micro-op drives every
  /// active lane's body. Trace position (function, block, ip) is shared
  /// and resolved against the leader's cache; per-lane state is each
  /// lane's own frame stack, registers, and memory. The shared `executed`
  /// count mirrors each lane's executed_ (written back at every exit).
  /// Returns false on a side exit that needs one slow step (stop boundary,
  /// untraceable block), true when the active set changed (trap, exit, or
  /// control divergence) so the driver re-evaluates eligibility.
  static bool pack_fast_run(std::vector<Impl*>& act,
                            std::vector<std::size_t>& slots,
                            RunResult* results, std::uint64_t stop,
                            std::uint64_t base) {
    Impl& lead = *act[0];
    machine::DispatchCounters& dc = machine::dispatch_counters();
    TraceFunction* tf = &lead.cache_.function(*lead.frames_.back().function);
    TraceBlock* tb = lead.cache_.block(*tf, lead.frames_.back().block);
    std::size_t ip = lead.frames_.back().index;
    if (tb == nullptr || ip >= tb->uops.size()) {
      dc.trace_invalidations.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    dc.trace_hits.fetch_add(1, std::memory_order_relaxed);
    // Local trace shadow: the (function, block) trace pointers for every
    // frame entered during this pack run. Structure is lockstep, so one
    // stack serves all lanes.
    std::vector<std::pair<TraceFunction*, TraceBlock*>> shadow;
    shadow.push_back({tf, tb});
    const std::size_t nact = act.size();
    // Per-lane top-of-stack frame pointers, refreshed whenever a call or
    // return changes the stack (push_frame_fast may reallocate frames_).
    Frame* fr[machine::kMaxLanes];
    for (std::size_t j = 0; j != nact; ++j) fr[j] = &act[j]->frames_.back();
    std::uint64_t executed = lead.executed_;
    std::uint64_t dispatched = 0;
    const VUOp* u = nullptr;
    std::size_t li = 0;
    const auto sync = [&](std::size_t j) {
      act[j]->executed_ = executed;
      fr[j]->index = ip;
    };
    const auto flush = [&]() {
      machine::PackCounters& pc = machine::pack_counters();
      pc.uops.fetch_add(dispatched, std::memory_order_relaxed);
      pc.lane_uops.fetch_add(dispatched * nact, std::memory_order_relaxed);
    };
    const auto side_exit = [&]() {
      for (std::size_t j = 0; j != nact; ++j) sync(j);
      dc.trace_invalidations.fetch_add(1, std::memory_order_relaxed);
      flush();
    };

// Plain (non-control) micro-op: the single-lane fast body with every
// state access routed through lane `m` / its top frame, applied to each
// active lane in turn.
#define VM_PACK_CASE(name, ...)      \
  case VOp::name: {                  \
    for (li = 0; li != nact; ++li) { \
      Impl& m = *act[li];            \
      Frame* frame = fr[li];         \
      (void)m;                       \
      (void)frame;                   \
      __VA_ARGS__                    \
    }                                \
    ++ip;                            \
    break;                           \
  }

    try {
      for (;;) {
        if (executed >= stop) {
          side_exit();
          return false;
        }
        u = &tb->uops[ip];
        ++executed;
        ++dispatched;
        switch (u->op) {
          VM_PACK_CASE(Add, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] = ((slot(*frame, u->a) & mm) +
                                   (slot(*frame, u->b) & mm)) &
                                  u->mask;
          })
          VM_PACK_CASE(Sub, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] = ((slot(*frame, u->a) & mm) -
                                   (slot(*frame, u->b) & mm)) &
                                  u->mask;
          })
          VM_PACK_CASE(Mul, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] = ((slot(*frame, u->a) & mm) *
                                   (slot(*frame, u->b) & mm)) &
                                  u->mask;
          })
          VM_PACK_CASE(SDiv, {
            const std::uint64_t mm = u->imm;
            const std::int64_t sa =
                sign_extend(slot(*frame, u->a) & mm, u->bits);
            const std::int64_t sb =
                sign_extend(slot(*frame, u->b) & mm, u->bits);
            if (sb == 0) trap(TrapKind::DivideByZero, 0);
            if (sb == -1 && sa == int_min_of(u->bits))
              trap(TrapKind::DivideByZero, 0, "division overflow");  // #DE
            frame->regs[u->dst] =
                static_cast<std::uint64_t>(sa / sb) & u->mask;
          })
          VM_PACK_CASE(UDiv, {
            const std::uint64_t mm = u->imm;
            const std::uint64_t a = slot(*frame, u->a) & mm;
            const std::uint64_t b = slot(*frame, u->b) & mm;
            if (b == 0) trap(TrapKind::DivideByZero, 0);
            frame->regs[u->dst] = (a / b) & u->mask;
          })
          VM_PACK_CASE(SRem, {
            const std::uint64_t mm = u->imm;
            const std::int64_t sa =
                sign_extend(slot(*frame, u->a) & mm, u->bits);
            const std::int64_t sb =
                sign_extend(slot(*frame, u->b) & mm, u->bits);
            if (sb == 0) trap(TrapKind::DivideByZero, 0);
            if (sb == -1 && sa == int_min_of(u->bits))
              trap(TrapKind::DivideByZero, 0, "division overflow");  // #DE
            frame->regs[u->dst] =
                static_cast<std::uint64_t>(sa % sb) & u->mask;
          })
          VM_PACK_CASE(URem, {
            const std::uint64_t mm = u->imm;
            const std::uint64_t a = slot(*frame, u->a) & mm;
            const std::uint64_t b = slot(*frame, u->b) & mm;
            if (b == 0) trap(TrapKind::DivideByZero, 0);
            frame->regs[u->dst] = (a % b) & u->mask;
          })
          VM_PACK_CASE(And, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] = ((slot(*frame, u->a) & mm) &
                                   (slot(*frame, u->b) & mm)) &
                                  u->mask;
          })
          VM_PACK_CASE(Or, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] = ((slot(*frame, u->a) & mm) |
                                   (slot(*frame, u->b) & mm)) &
                                  u->mask;
          })
          VM_PACK_CASE(Xor, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] = ((slot(*frame, u->a) & mm) ^
                                   (slot(*frame, u->b) & mm)) &
                                  u->mask;
          })
          VM_PACK_CASE(Shl, {
            const std::uint64_t mm = u->imm;
            const std::uint64_t a = slot(*frame, u->a) & mm;
            const unsigned amount =
                shift_amount(slot(*frame, u->b) & mm, u->bits);
            frame->regs[u->dst] = (a << amount) & u->mask;
          })
          VM_PACK_CASE(LShr, {
            const std::uint64_t mm = u->imm;
            const std::uint64_t a = slot(*frame, u->a) & mm;
            const unsigned amount =
                shift_amount(slot(*frame, u->b) & mm, u->bits);
            frame->regs[u->dst] = (a >> amount) & u->mask;
          })
          VM_PACK_CASE(AShr, {
            const std::uint64_t mm = u->imm;
            const std::int64_t sa =
                sign_extend(slot(*frame, u->a) & mm, u->bits);
            const unsigned amount =
                shift_amount(slot(*frame, u->b) & mm, u->bits);
            frame->regs[u->dst] =
                static_cast<std::uint64_t>(sa >> amount) & u->mask;
          })
          VM_PACK_CASE(FAdd, {
            frame->regs[u->dst] = bits_of(double_of(slot(*frame, u->a)) +
                                          double_of(slot(*frame, u->b))) &
                                  u->mask;
          })
          VM_PACK_CASE(FSub, {
            frame->regs[u->dst] = bits_of(double_of(slot(*frame, u->a)) -
                                          double_of(slot(*frame, u->b))) &
                                  u->mask;
          })
          VM_PACK_CASE(FMul, {
            frame->regs[u->dst] = bits_of(double_of(slot(*frame, u->a)) *
                                          double_of(slot(*frame, u->b))) &
                                  u->mask;
          })
          VM_PACK_CASE(FDiv, {
            // IEEE: inf/NaN, no trap.
            frame->regs[u->dst] = bits_of(double_of(slot(*frame, u->a)) /
                                          double_of(slot(*frame, u->b))) &
                                  u->mask;
          })
          VM_PACK_CASE(IcmpEq, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                ((slot(*frame, u->a) & mm) == (slot(*frame, u->b) & mm)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(IcmpNe, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                ((slot(*frame, u->a) & mm) != (slot(*frame, u->b) & mm)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(IcmpSlt, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                (sign_extend(slot(*frame, u->a) & mm, u->bits) <
                         sign_extend(slot(*frame, u->b) & mm, u->bits)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(IcmpSle, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                (sign_extend(slot(*frame, u->a) & mm, u->bits) <=
                         sign_extend(slot(*frame, u->b) & mm, u->bits)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(IcmpSgt, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                (sign_extend(slot(*frame, u->a) & mm, u->bits) >
                         sign_extend(slot(*frame, u->b) & mm, u->bits)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(IcmpSge, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                (sign_extend(slot(*frame, u->a) & mm, u->bits) >=
                         sign_extend(slot(*frame, u->b) & mm, u->bits)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(IcmpUlt, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                ((slot(*frame, u->a) & mm) < (slot(*frame, u->b) & mm)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(IcmpUle, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                ((slot(*frame, u->a) & mm) <= (slot(*frame, u->b) & mm)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(IcmpUgt, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                ((slot(*frame, u->a) & mm) > (slot(*frame, u->b) & mm)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(IcmpUge, {
            const std::uint64_t mm = u->imm;
            frame->regs[u->dst] =
                ((slot(*frame, u->a) & mm) >= (slot(*frame, u->b) & mm)
                     ? 1
                     : 0) &
                u->mask;
          })
          VM_PACK_CASE(FcmpOeq, {
            frame->regs[u->dst] = (double_of(slot(*frame, u->a)) ==
                                           double_of(slot(*frame, u->b))
                                       ? 1
                                       : 0) &
                                  u->mask;
          })
          VM_PACK_CASE(FcmpOne, {
            const double a = double_of(slot(*frame, u->a));
            const double b = double_of(slot(*frame, u->b));
            frame->regs[u->dst] = ((a < b || a > b) ? 1 : 0) & u->mask;
          })
          VM_PACK_CASE(FcmpOlt, {
            frame->regs[u->dst] = (double_of(slot(*frame, u->a)) <
                                           double_of(slot(*frame, u->b))
                                       ? 1
                                       : 0) &
                                  u->mask;
          })
          VM_PACK_CASE(FcmpOle, {
            frame->regs[u->dst] = (double_of(slot(*frame, u->a)) <=
                                           double_of(slot(*frame, u->b))
                                       ? 1
                                       : 0) &
                                  u->mask;
          })
          VM_PACK_CASE(FcmpOgt, {
            frame->regs[u->dst] = (double_of(slot(*frame, u->a)) >
                                           double_of(slot(*frame, u->b))
                                       ? 1
                                       : 0) &
                                  u->mask;
          })
          VM_PACK_CASE(FcmpOge, {
            frame->regs[u->dst] = (double_of(slot(*frame, u->a)) >=
                                           double_of(slot(*frame, u->b))
                                       ? 1
                                       : 0) &
                                  u->mask;
          })
          VM_PACK_CASE(MaskCast, {
            frame->regs[u->dst] = slot(*frame, u->a) & u->mask;
          })
          VM_PACK_CASE(SExt, {
            frame->regs[u->dst] = static_cast<std::uint64_t>(sign_extend(
                                      slot(*frame, u->a), u->bits)) &
                                  u->mask;
          })
          VM_PACK_CASE(FpToSi, {
            const double d = double_of(slot(*frame, u->a));
            std::int64_t out;
            // cvttsd2si semantics: out-of-range / NaN -> "integer
            // indefinite".
            if (std::isnan(d) || d >= 9.2233720368547758e18 ||
                d < -9.2233720368547758e18) {
              out = std::numeric_limits<std::int64_t>::min();
            } else {
              out = static_cast<std::int64_t>(d);
            }
            frame->regs[u->dst] = static_cast<std::uint64_t>(out) & u->mask;
          })
          VM_PACK_CASE(SiToFp, {
            frame->regs[u->dst] =
                bits_of(static_cast<double>(
                    sign_extend(slot(*frame, u->a), u->bits))) &
                u->mask;
          })
          VM_PACK_CASE(Select, {
            // Both arms are read (data dependences, not control) —
            // matching the slow path, though reads have no side effects
            // unhooked.
            const std::uint64_t cond = slot(*frame, u->a) & 1;
            const std::uint64_t tv = slot(*frame, u->b);
            const std::uint64_t fv = slot(*frame, u->c);
            frame->regs[u->dst] = (cond ? tv : fv) & u->mask;
          })
          VM_PACK_CASE(Alloca, {
            // Address pre-assigned at frame setup; re-mask like set_result.
            frame->regs[u->dst] &= u->mask;
          })
          VM_PACK_CASE(Load, {
            frame->regs[u->dst] =
                m.memory_.read(slot(*frame, u->a), u->size) & u->mask;
          })
          VM_PACK_CASE(Store, {
            const std::uint64_t value = slot(*frame, u->a);
            m.memory_.write(slot(*frame, u->b), u->size, value & u->mask);
          })
          VM_PACK_CASE(Gep, {
            std::uint64_t addr = slot(*frame, u->a) + u->imm;
            const GepTerm* term = tb->gep_terms.data() + u->pool;
            for (std::uint16_t k = 0; k < u->n; ++k, ++term)
              addr += static_cast<std::uint64_t>(
                  sign_extend(slot(*frame, term->slot), term->bits) *
                  term->scale);
            frame->regs[u->dst] = addr & u->mask;
          })

          case VOp::PhiGroup: {
            // The interior bumps (one per phi after the first) are shared
            // state, so a timeout lands on every lane at the same phi,
            // before any write — exactly like the single-lane
            // read-then-write group, whose one-by-one increments leave the
            // count at max_instructions + 1 when the throw fires.
            const std::uint64_t max = lead.limits_.max_instructions;
            if (u->n > 1 && executed + (u->n - 1) > max) {
              executed = max + 1;
              flush();
              for (std::size_t j = 0; j != nact; ++j) {
                sync(j);
                results[slots[j]] = act[j]->timeout_fill();
              }
              act.clear();
              slots.clear();
              return true;
            }
            executed += u->n > 1 ? u->n - 1 : 0;
            const PhiEntry* entries = tb->phi_entries.data() + u->pool;
            for (li = 0; li != nact; ++li) {
              Impl& m = *act[li];
              Frame* frame = fr[li];
              m.phi_scratch_.clear();
              for (std::uint16_t k = 0; k < u->n; ++k) {
                const PhiEntry& e = entries[k];
                const PhiEdge* edge = tb->phi_edges.data() + e.edges_at;
                std::uint64_t v = 0;
                bool found = false;
                for (std::uint32_t j = 0; j < e.edges_n; ++j, ++edge) {
                  if (edge->pred == frame->prev_block) {
                    v = slot(*frame, edge->slot);
                    found = true;
                    break;
                  }
                }
                assert(found && "phi has no edge for predecessor");
                (void)found;
                m.phi_scratch_.push_back(v);
              }
              for (std::uint16_t k = 0; k < u->n; ++k)
                frame->regs[entries[k].dst] =
                    m.phi_scratch_[k] & entries[k].mask;
            }
            ip += u->n;
            break;
          }
          case VOp::Pad: {
            // Unreachable by construction (PhiGroup jumps past its pads);
            // defensively hand the state to the slow path. The bump this
            // dispatch did must be undone: the op executed nothing.
            --executed;
            --dispatched;
            side_exit();
            return false;
          }
          case VOp::Br: {
            for (std::size_t j = 0; j != nact; ++j) {
              Frame* frame = fr[j];
              frame->prev_block = frame->block;
              frame->block = u->bb0;
            }
            ip = 0;
            TraceBlock* nt = u->tb0;
            if (nt->state != TraceBlock::State::Ready) {
              nt = lead.cache_.block(*tf, u->bb0);
              if (nt == nullptr) {
                side_exit();
                return false;
              }
            }
            tb = nt;
            shadow.back().second = tb;
            break;
          }
          case VOp::BrCond: {
            const std::uint64_t cond0 = slot(*fr[0], u->a) & 1;
            bool mixed = false;
            for (std::size_t j = 1; j != nact; ++j)
              if ((slot(*fr[j], u->a) & 1) != cond0) {
                mixed = true;
                break;
              }
            if (!mixed) {
              const ir::BasicBlock* bb = cond0 ? u->bb0 : u->bb1;
              TraceBlock* nt = cond0 ? u->tb0 : u->tb1;
              for (std::size_t j = 0; j != nact; ++j) {
                Frame* frame = fr[j];
                frame->prev_block = frame->block;
                frame->block = bb;
              }
              ip = 0;
              if (nt->state != TraceBlock::State::Ready) {
                nt = lead.cache_.block(*tf, bb);
                if (nt == nullptr) {
                  side_exit();
                  return false;
                }
              }
              tb = nt;
              shadow.back().second = tb;
              break;
            }
            // Control divergence: park every lane at its own successor and
            // let the driver re-form the pack around the leader.
            flush();
            for (std::size_t j = 0; j != nact; ++j) {
              Frame* frame = fr[j];
              const std::uint64_t cond = slot(*frame, u->a) & 1;
              frame->prev_block = frame->block;
              frame->block = cond ? u->bb0 : u->bb1;
              frame->index = 0;
              act[j]->executed_ = executed;
            }
            pack_resolve(act, slots, results, base);
            return true;
          }
          case VOp::Ret: {
            if (lead.frames_.size() == 1) {
              // Shared depth: every lane's entry frame returns here.
              flush();
              for (std::size_t j = 0; j != nact; ++j) {
                Impl& m = *act[j];
                Frame& frame = *fr[j];
                const std::uint64_t raw =
                    u->n != 0 ? slot(frame, u->a) : 0;
                const ir::Function* entry_fn = frame.function;
                m.sp_ = frame.saved_sp;
                m.frames_.pop_back();
                m.executed_ = executed;
                results[slots[j]] = m.exit_fill(entry_fn, raw);
              }
              act.clear();
              slots.clear();
              return true;
            }
            for (std::size_t j = 0; j != nact; ++j) {
              Impl& m = *act[j];
              Frame& frame = *fr[j];
              const std::uint64_t raw = u->n != 0 ? slot(frame, u->a) : 0;
              m.sp_ = frame.saved_sp;
              const ir::Instruction* site = frame.call_site;
              m.frames_.pop_back();
              Frame& caller = m.frames_.back();
              if (site->has_result())
                caller.regs[site->id()] = raw & type_mask(site->type());
              ++caller.index;
              fr[j] = &caller;
            }
            shadow.pop_back();
            ip = fr[0]->index;
            if (shadow.empty()) {
              // Returned past the pack-entry frame: re-resolve the
              // caller's trace (it was entered before this pack run
              // began).
              tf = &lead.cache_.function(*fr[0]->function);
              TraceBlock* nt = lead.cache_.block(*tf, fr[0]->block);
              if (nt == nullptr || ip >= nt->uops.size()) {
                side_exit();
                return false;
              }
              tb = nt;
              shadow.push_back({tf, tb});
            } else {
              tf = shadow.back().first;
              tb = shadow.back().second;
            }
            break;
          }
          case VOp::Call: {
            // The caller resumes via ++index at Ret.
            for (std::size_t j = 0; j != nact; ++j) fr[j]->index = ip;
            // Stack-overflow traps in push_frame_fast are structural (sp_
            // and depth evolve in lockstep), so they hit every lane
            // together; the per-lane guard keeps masking exact regardless.
            char dead[machine::kMaxLanes] = {};
            bool any_dead = false;
            const VSlot* arg_slots = tb->call_args.data() + u->pool;
            for (std::size_t j = 0; j != nact; ++j) {
              Impl& m = *act[j];
              try {
                std::vector<std::uint64_t> args;
                args.reserve(u->n);
                for (std::uint16_t k = 0; k < u->n; ++k)
                  args.push_back(slot(*fr[j], arg_slots[k]));
                m.push_frame_fast(*u->callee_tf, std::move(args),
                                  static_cast<const ir::CallInst*>(u->instr));
              } catch (const TrapException& trap) {
                m.executed_ = executed;
                results[slots[j]] = m.trap_fill(trap);
                dead[j] = 1;
                any_dead = true;
              }
            }
            if (any_dead) {
              flush();
              for (std::size_t j = 0; j != nact; ++j)
                if (!dead[j]) {
                  act[j]->executed_ = executed;
                  fr[j] = &act[j]->frames_.back();
                }
              pack_compact(act, slots, dead);
              return true;
            }
            for (std::size_t j = 0; j != nact; ++j)
              fr[j] = &act[j]->frames_.back();
            tf = u->callee_tf;
            TraceBlock* nt = lead.cache_.block(*tf, tf->fn->entry());
            ip = 0;
            if (nt == nullptr) {
              side_exit();
              return false;
            }
            tb = nt;
            shadow.push_back({tf, tb});
            break;
          }
          case VOp::CallBuiltin: {
            char dead[machine::kMaxLanes] = {};
            bool any_dead = false;
            const VSlot* arg_slots = tb->call_args.data() + u->pool;
            for (std::size_t j = 0; j != nact; ++j) {
              Impl& m = *act[j];
              try {
                m.builtin_args_.clear();
                for (std::uint16_t k = 0; k < u->n; ++k)
                  m.builtin_args_.push_back(slot(*fr[j], arg_slots[k]));
                const std::uint64_t raw = m.runtime_.call_builtin(
                    u->callee->name(), m.builtin_args_);
                if (u->instr->has_result())
                  fr[j]->regs[u->dst] = raw & u->mask;
              } catch (const TrapException& trap) {
                m.executed_ = executed;
                fr[j]->index = ip;
                results[slots[j]] = m.trap_fill(trap);
                dead[j] = 1;
                any_dead = true;
              }
            }
            if (!any_dead) {
              ++ip;
              break;
            }
            flush();
            for (std::size_t j = 0; j != nact; ++j)
              if (!dead[j]) {
                act[j]->executed_ = executed;
                fr[j]->index = ip + 1;
              }
            pack_compact(act, slots, dead);
            return true;
          }
        }
      }
    } catch (const TrapException& trap) {
      // A plain op trapped in lane `li` at `ip`: lanes before it completed
      // the op (they stand at ip + 1), lanes after it have not run it yet
      // and replay it through their own slow step — identical semantics,
      // pinned by the DispatchEquiv fixtures.
      flush();
      char dead[machine::kMaxLanes] = {};
      {
        Impl& m = *act[li];
        m.executed_ = executed;
        m.frames_.back().index = ip;
        results[slots[li]] = m.trap_fill(trap);
        dead[li] = 1;
      }
      for (std::size_t j = 0; j != li; ++j) {
        act[j]->executed_ = executed;
        act[j]->frames_.back().index = ip + 1;
      }
      for (std::size_t j = li + 1; j != nact; ++j) {
        Impl& m = *act[j];
        m.executed_ = executed - 1;
        m.frames_.back().index = ip;
        const ir::Function* entry_fn = m.frames_.front().function;
        std::uint64_t raw = 0;
        try {
          if (m.slow_step(&raw)) {
            results[slots[j]] = m.exit_fill(entry_fn, raw);
            dead[j] = 1;
          }
        } catch (const TrapException& again) {
          results[slots[j]] = m.trap_fill(again);
          dead[j] = 1;
        } catch (const machine::TimeoutException&) {
          results[slots[j]] = m.timeout_fill();
          dead[j] = 1;
        }
      }
      pack_compact(act, slots, dead);
      return true;
    }
#undef VM_PACK_CASE
  }

  void set_result(Frame& frame, const ir::Instruction& instr,
                  std::uint64_t raw) {
    raw &= type_mask(instr.type());
    if (live_hook_ != nullptr) {
      raw = live_hook_->on_result({frame.id, &instr}, raw);
      raw &= type_mask(instr.type());
    }
    frame.regs[instr.id()] = raw;
  }

  std::uint64_t evaluate(Frame& frame, const ir::Instruction& instr) {
    const Opcode op = instr.opcode();
    if (ir::is_int_binary(op)) return eval_int_binary(frame, instr);
    if (ir::is_fp_binary(op)) return eval_fp_binary(frame, instr);
    if (ir::is_cast(op)) return eval_cast(frame, instr);
    switch (op) {
      case Opcode::ICmp: return eval_icmp(frame, instr);
      case Opcode::FCmp: return eval_fcmp(frame, instr);
      case Opcode::Alloca:
        return frame.regs[instr.id()];  // address assigned at frame setup
      case Opcode::Load: {
        const std::uint64_t addr = read_operand(frame, instr, instr.operand(0));
        const ir::Type* t = instr.type();
        const auto size = static_cast<unsigned>(t->size_in_bytes());
        if (live_hook_ != nullptr)
          live_hook_->on_memory_access(instr, addr, size, /*is_store=*/false);
        return memory_.read(addr, size) & type_mask(t);
      }
      case Opcode::Gep: return eval_gep(frame, instr);
      case Opcode::Select: {
        const std::uint64_t cond = read_operand(frame, instr, instr.operand(0)) & 1;
        // Both arms are read (they are data dependences, not control).
        const std::uint64_t tv = read_operand(frame, instr, instr.operand(1));
        const std::uint64_t fv = read_operand(frame, instr, instr.operand(2));
        return cond ? tv : fv;
      }
      default:
        trap(TrapKind::Unreachable, 0, ir::opcode_name(op));
    }
  }

  std::uint64_t eval_int_binary(Frame& frame, const ir::Instruction& instr) {
    const unsigned bits = instr.type()->int_bits();
    const std::uint64_t mask = faultlab::low_mask(bits);
    const std::uint64_t a = read_operand(frame, instr, instr.operand(0)) & mask;
    const std::uint64_t b = read_operand(frame, instr, instr.operand(1)) & mask;
    const std::int64_t sa = sign_extend(a, bits);
    const std::int64_t sb = sign_extend(b, bits);
    switch (instr.opcode()) {
      case Opcode::Add: return (a + b) & mask;
      case Opcode::Sub: return (a - b) & mask;
      case Opcode::Mul: return (a * b) & mask;
      case Opcode::SDiv: {
        if (sb == 0) trap(TrapKind::DivideByZero, 0);
        if (sb == -1 && sa == int_min_of(bits))
          trap(TrapKind::DivideByZero, 0, "division overflow");  // x86 #DE
        return static_cast<std::uint64_t>(sa / sb) & mask;
      }
      case Opcode::UDiv:
        if (b == 0) trap(TrapKind::DivideByZero, 0);
        return (a / b) & mask;
      case Opcode::SRem: {
        if (sb == 0) trap(TrapKind::DivideByZero, 0);
        if (sb == -1 && sa == int_min_of(bits))
          trap(TrapKind::DivideByZero, 0, "division overflow");  // x86 #DE
        return static_cast<std::uint64_t>(sa % sb) & mask;
      }
      case Opcode::URem:
        if (b == 0) trap(TrapKind::DivideByZero, 0);
        return (a % b) & mask;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: {
        const unsigned amount = shift_amount(b, bits);
        return (a << amount) & mask;
      }
      case Opcode::LShr: {
        const unsigned amount = shift_amount(b, bits);
        return (a >> amount) & mask;
      }
      case Opcode::AShr: {
        const unsigned amount = shift_amount(b, bits);
        return static_cast<std::uint64_t>(sa >> amount) & mask;
      }
      default:
        trap(TrapKind::Unreachable, 0);
    }
  }

  /// x86-style shift-count masking so VM and simulator agree.
  static unsigned shift_amount(std::uint64_t b, unsigned bits) {
    return static_cast<unsigned>(b & (bits >= 64 ? 63 : 31));
  }

  static std::int64_t int_min_of(unsigned bits) {
    return bits >= 64 ? std::numeric_limits<std::int64_t>::min()
                      : -(std::int64_t{1} << (bits - 1));
  }

  std::uint64_t eval_fp_binary(Frame& frame, const ir::Instruction& instr) {
    const double a = double_of(read_operand(frame, instr, instr.operand(0)));
    const double b = double_of(read_operand(frame, instr, instr.operand(1)));
    switch (instr.opcode()) {
      case Opcode::FAdd: return bits_of(a + b);
      case Opcode::FSub: return bits_of(a - b);
      case Opcode::FMul: return bits_of(a * b);
      case Opcode::FDiv: return bits_of(a / b);  // IEEE: inf/NaN, no trap
      default:
        trap(TrapKind::Unreachable, 0);
    }
  }

  std::uint64_t eval_icmp(Frame& frame, const ir::Instruction& instr) {
    const auto& cmp = static_cast<const ir::ICmpInst&>(instr);
    const ir::Type* t = cmp.lhs()->type();
    const unsigned bits = t->register_bits();
    const std::uint64_t mask = faultlab::low_mask(bits);
    const std::uint64_t a = read_operand(frame, instr, cmp.lhs()) & mask;
    const std::uint64_t b = read_operand(frame, instr, cmp.rhs()) & mask;
    const std::int64_t sa = sign_extend(a, bits);
    const std::int64_t sb = sign_extend(b, bits);
    bool r = false;
    switch (cmp.predicate()) {
      case ir::ICmpPred::EQ: r = a == b; break;
      case ir::ICmpPred::NE: r = a != b; break;
      case ir::ICmpPred::SLT: r = sa < sb; break;
      case ir::ICmpPred::SLE: r = sa <= sb; break;
      case ir::ICmpPred::SGT: r = sa > sb; break;
      case ir::ICmpPred::SGE: r = sa >= sb; break;
      case ir::ICmpPred::ULT: r = a < b; break;
      case ir::ICmpPred::ULE: r = a <= b; break;
      case ir::ICmpPred::UGT: r = a > b; break;
      case ir::ICmpPred::UGE: r = a >= b; break;
    }
    return r ? 1 : 0;
  }

  std::uint64_t eval_fcmp(Frame& frame, const ir::Instruction& instr) {
    const auto& cmp = static_cast<const ir::FCmpInst&>(instr);
    const double a = double_of(read_operand(frame, instr, cmp.lhs()));
    const double b = double_of(read_operand(frame, instr, cmp.rhs()));
    bool r = false;
    switch (cmp.predicate()) {  // ordered: NaN compares false
      case ir::FCmpPred::OEQ: r = a == b; break;
      case ir::FCmpPred::ONE: r = a < b || a > b; break;
      case ir::FCmpPred::OLT: r = a < b; break;
      case ir::FCmpPred::OLE: r = a <= b; break;
      case ir::FCmpPred::OGT: r = a > b; break;
      case ir::FCmpPred::OGE: r = a >= b; break;
    }
    return r ? 1 : 0;
  }

  std::uint64_t eval_cast(Frame& frame, const ir::Instruction& instr) {
    const std::uint64_t v = read_operand(frame, instr, instr.operand(0));
    const ir::Type* from = instr.operand(0)->type();
    const ir::Type* to = instr.type();
    switch (instr.opcode()) {
      case Opcode::Trunc:
        return v & type_mask(to);
      case Opcode::ZExt:
        return v & type_mask(from);
      case Opcode::SExt:
        return static_cast<std::uint64_t>(
                   sign_extend(v, from->int_bits())) & type_mask(to);
      case Opcode::FPToSI: {
        const double d = double_of(v);
        std::int64_t out;
        // cvttsd2si semantics: out-of-range / NaN -> "integer indefinite".
        if (std::isnan(d) || d >= 9.2233720368547758e18 ||
            d < -9.2233720368547758e18) {
          out = std::numeric_limits<std::int64_t>::min();
        } else {
          out = static_cast<std::int64_t>(d);
        }
        return static_cast<std::uint64_t>(out) & type_mask(to);
      }
      case Opcode::SIToFP:
        return bits_of(static_cast<double>(
            sign_extend(v, from->int_bits())));
      case Opcode::Bitcast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        return v & type_mask(to);
      default:
        trap(TrapKind::Unreachable, 0);
    }
  }

  std::uint64_t eval_gep(Frame& frame, const ir::Instruction& instr) {
    const auto& gep = static_cast<const ir::GepInst&>(instr);
    std::uint64_t addr = read_operand(frame, instr, gep.base());
    const ir::Type* current = gep.base()->type()->pointee();
    for (unsigned i = 0; i < gep.num_indices(); ++i) {
      const std::uint64_t raw = read_operand(frame, instr, gep.index(i));
      const std::int64_t idx =
          sign_extend(raw, gep.index(i)->type()->register_bits());
      if (i == 0) {
        addr += static_cast<std::uint64_t>(
            idx * static_cast<std::int64_t>(current->size_in_bytes()));
      } else if (current->is_array()) {
        current = current->array_element();
        addr += static_cast<std::uint64_t>(
            idx * static_cast<std::int64_t>(current->size_in_bytes()));
      } else {  // struct: verifier guarantees constant index
        addr += current->struct_field_offset(static_cast<std::size_t>(idx));
        current = current->struct_fields()[static_cast<std::size_t>(idx)];
      }
    }
    return addr;
  }

  static constexpr std::size_t kMaxCallDepth = 4096;

  const ir::Module& module_;
  const machine::GlobalLayout& layout_;
  ExecHook* hook_ = nullptr;
  // hook_ gated per instruction: null while the hook is dormant awaiting
  // its re-arm point, so no callback fires mid-sleep.
  ExecHook* live_hook_ = nullptr;
  RunLimits limits_;
  machine::Memory memory_;
  machine::Runtime runtime_;
  std::vector<Frame> frames_;
  std::uint64_t sp_ = Layout::kStackTop;
  std::uint64_t executed_ = 0;
  std::uint64_t next_frame_id_ = 1;
  std::uint64_t next_snapshot_at_ = 0;
  machine::DispatchMode mode_ = machine::DispatchMode::Threaded;
  TraceCache cache_;
  /// Fast-path call-stack mirror: (function, block) trace pointers for
  /// every frame entered during the current fast_run.
  std::vector<std::pair<TraceFunction*, TraceBlock*>> shadow_;
  std::vector<std::uint64_t> phi_scratch_;
  std::vector<std::uint64_t> builtin_args_;
};

void Interpreter::Impl::pack_run(Impl* const* lanes, std::size_t count,
                                 RunResult* results) {
  machine::PackCounters& pc = machine::pack_counters();
  pc.groups.fetch_add(1, std::memory_order_relaxed);
  pc.lanes.fetch_add(count, std::memory_order_relaxed);
  std::vector<Impl*> act(lanes, lanes + count);
  std::vector<std::size_t> slots(count);
  for (std::size_t i = 0; i < count; ++i) slots[i] = i;
  const std::uint64_t base = act[0]->executed_;
  while (act.size() > 1) {
    std::uint64_t stop = act[0]->limits_.max_instructions;
    if (pack_fast_eligible(act, &stop) &&
        pack_fast_run(act, slots, results, stop, base))
      continue;
    if (act.size() > 1) pack_slow_step(act, slots, results, base);
  }
  // The last lane left (if any) no longer shares work with anyone; finish
  // it on the plain single-lane path.
  if (!act.empty()) results[slots[0]] = act[0]->resume_finish();
}

Interpreter::Interpreter(const ir::Module& module, ExecHook* hook)
    : module_(module), hook_(hook), layout_(module) {}

Interpreter::~Interpreter() = default;

RunResult Interpreter::run(const std::string& entry, const RunLimits& limits) {
  if (impl_ == nullptr) impl_ = std::make_unique<Impl>(module_, layout_);
  impl_->prepare(hook_, limits);
  RunResult r = impl_->run(entry);
  record_run_instructions(r.dynamic_instructions);
  return r;
}

RunResult Interpreter::run_from(const Snapshot& snapshot,
                                const RunLimits& limits) {
  if (impl_ == nullptr) impl_ = std::make_unique<Impl>(module_, layout_);
  impl_->prepare(hook_, limits);
  RunResult r = impl_->run_from(snapshot);
  // dynamic_instructions is snapshot-primed (absolute position in the
  // golden schedule); the histogram tracks work actually done here.
  record_run_instructions(r.dynamic_instructions - snapshot.executed);
  return r;
}

void Interpreter::run_lockstep(Interpreter* const* lanes, std::size_t count,
                               const Snapshot& snapshot,
                               const RunLimits& limits, RunResult* results) {
  bool packable = count > 1 && count <= machine::kMaxLanes &&
                  machine::dispatch_mode() == machine::DispatchMode::Threaded &&
                  limits.snapshot_stride == 0;
  for (std::size_t i = 1; packable && i < count; ++i)
    if (&lanes[i]->module_ != &lanes[0]->module_) packable = false;
  if (!packable) {
    for (std::size_t i = 0; i < count; ++i)
      results[i] = lanes[i]->run_from(snapshot, limits);
    return;
  }
  Impl* impls[machine::kMaxLanes];
  machine::Memory::RestoreStats restores[machine::kMaxLanes];
  for (std::size_t i = 0; i < count; ++i) {
    Interpreter& lane = *lanes[i];
    if (lane.impl_ == nullptr)
      lane.impl_ = std::make_unique<Impl>(lane.module_, lane.layout_);
    lane.impl_->prepare(lane.hook_, limits);
    restores[i] = lane.impl_->restore_from(snapshot);
    impls[i] = lane.impl_.get();
  }
  Impl::pack_run(impls, count, results);
  for (std::size_t i = 0; i < count; ++i) {
    results[i].restored_pages = restores[i].pages;
    results[i].delta_restored = restores[i].delta;
    record_run_instructions(results[i].dynamic_instructions -
                            snapshot.executed);
  }
}

}  // namespace faultlab::vm
