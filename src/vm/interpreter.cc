#include "vm/interpreter.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "support/bitutil.h"

namespace faultlab::vm {

namespace {

using ir::Opcode;
using machine::Layout;
using machine::TrapException;
using machine::TrapKind;

std::uint64_t type_mask(const ir::Type* t) {
  return faultlab::low_mask(t->register_bits());
}

/// Instructions actually executed per run()/run_from() call (the delta, not
/// the snapshot-primed absolute count), log2-bucketed in the global
/// registry. One handle lookup per process; one branch when disabled.
void record_run_instructions(std::uint64_t delta) {
  if (!obs::metrics_enabled()) return;
  static obs::Histogram histogram =
      obs::Registry::global().histogram("vm.run_instructions");
  histogram.record(delta);
}

}  // namespace

// Execution keeps the call-frame stack as explicit data (frames_) instead
// of recursing on the native stack, so the complete interpreter state can
// be captured into a Snapshot between any two dynamic instructions and
// resumed later — the basis of checkpointed fault-injection trials.
class Interpreter::Impl {
 public:
  using Frame = Snapshot::Frame;

  Impl(const ir::Module& module, const machine::GlobalLayout& layout)
      : module_(module), layout_(layout), runtime_(memory_) {}

  /// Arms the per-run parameters. The impl itself is resident — memory,
  /// frame and register storage persist between runs so consecutive
  /// restores stay on the delta path and reuse allocations.
  void prepare(ExecHook* hook, const RunLimits& limits) {
    hook_ = hook;
    live_hook_ = nullptr;
    limits_ = limits;
    next_snapshot_at_ = 0;
  }

  RunResult run(const std::string& entry) {
    const ir::Function* main_fn = module_.find_function(entry);
    if (main_fn == nullptr || main_fn->is_builtin())
      throw std::invalid_argument("no such entry function: " + entry);

    // Fresh image: releasing the mappings also disarms delta tracking, so
    // a later run_from() knows to fall back to a full restore.
    memory_.reset();
    runtime_.reset();
    frames_.clear();
    executed_ = 0;
    next_frame_id_ = 1;
    layout_.materialize(memory_);
    memory_.map_range(Layout::kStackLimit, Layout::kStackSize);
    sp_ = Layout::kStackTop;
    push_frame(*main_fn, {}, nullptr, 0);
    return drive();
  }

  RunResult run_from(const Snapshot& snapshot) {
    assert(!snapshot.frames.empty() && "snapshot of a finished run");
    const machine::Memory::RestoreStats restore =
        memory_.restore_delta(snapshot.memory);
    runtime_.restore(snapshot.runtime);
    // Copy-assign reuses the resident vectors' capacity (including each
    // frame's register file), so only the state that actually ran since
    // the last restore gets rewritten/reallocated.
    frames_ = snapshot.frames;
    sp_ = snapshot.sp;
    executed_ = snapshot.executed;
    next_frame_id_ = snapshot.next_frame_id;
    // Snapshots already past this run's budget time out on the next
    // instruction, matching where the non-checkpointed run would stop.
    RunResult result = drive();
    result.restored_pages = restore.pages;
    result.delta_restored = restore.delta;
    return result;
  }

 private:
  RunResult drive() {
    RunResult result;
    const ir::Function* entry_fn = frames_.front().function;
    if (limits_.snapshot_stride != 0)
      next_snapshot_at_ = executed_ + limits_.snapshot_stride;
    try {
      const std::uint64_t ret = exec_loop();
      const ir::Type* rt = entry_fn->return_type();
      result.exit_value = rt->is_int()
                              ? sign_extend(ret, rt->int_bits())
                              : static_cast<std::int64_t>(ret);
    } catch (const TrapException& trap) {
      result.trapped = true;
      result.trap = trap.kind();
      result.trap_address = trap.address();
      // The frame stack is intact while the exception unwinds to here, so
      // the innermost frame still points at the instruction that trapped
      // (indices advance only after an instruction completes).
      if (!frames_.empty()) {
        const Snapshot::Frame& top = frames_.back();
        if (top.block != nullptr && top.index < top.block->size())
          result.trap_pc = top.block->instr(top.index)->id();
      }
    } catch (const machine::TimeoutException&) {
      result.timed_out = true;
    }
    result.dynamic_instructions = executed_;
    result.output = runtime_.output();
    return result;
  }

  std::uint64_t read_operand(Frame& frame, const ir::Instruction& user,
                             const ir::Value* v) {
    switch (v->vkind()) {
      case ir::ValueKind::ConstantInt:
        return static_cast<const ir::ConstantInt*>(v)->raw();
      case ir::ValueKind::ConstantDouble:
        return bits_of(static_cast<const ir::ConstantDouble*>(v)->value());
      case ir::ValueKind::ConstantNull:
        return 0;
      case ir::ValueKind::GlobalVariable:
        return layout_.address_of(static_cast<const ir::GlobalVariable*>(v));
      case ir::ValueKind::Argument: {
        const auto* arg = static_cast<const ir::Argument*>(v);
        if (live_hook_ != nullptr)
          live_hook_->on_argument_read(frame.id, arg->index(), user);
        return frame.args[arg->index()];
      }
      case ir::ValueKind::Instruction: {
        const auto* def = static_cast<const ir::Instruction*>(v);
        if (live_hook_ != nullptr)
          live_hook_->on_operand_read({frame.id, def}, user);
        return frame.regs[def->id()];
      }
    }
    return 0;
  }

  [[noreturn]] void trap(TrapKind kind, std::uint64_t addr,
                         const char* detail = "") {
    throw TrapException(kind, addr, detail);
  }

  void bump_instruction_count() {
    if (++executed_ > limits_.max_instructions)
      throw machine::TimeoutException();
  }

  void push_frame(const ir::Function& fn, std::vector<std::uint64_t> args,
                  const ir::CallInst* site, std::uint64_t caller_frame) {
    if (frames_.size() >= kMaxCallDepth)
      trap(TrapKind::StackOverflow, sp_, "call depth");

    Frame frame;
    frame.function = &fn;
    frame.id = next_frame_id_++;
    frame.args = std::move(args);
    if (live_hook_ != nullptr && site != nullptr)
      live_hook_->on_call(*site, caller_frame, frame.id);
    frame.regs.assign(fn.num_instructions(), 0);

    // Allocate the frame's stack slots (allocas) in one adjustment, the way
    // a real prologue would.
    std::uint64_t frame_size = 0;
    std::vector<const ir::AllocaInst*> allocas;
    for (const auto& bb : fn.blocks()) {
      for (const auto& instr : bb->instructions()) {
        if (auto* al = dynamic_cast<const ir::AllocaInst*>(instr.get())) {
          const auto align = std::max<std::uint64_t>(al->allocated_type()->alignment(), 1);
          frame_size = (frame_size + align - 1) / align * align;
          frame_size += al->allocated_type()->size_in_bytes();
          allocas.push_back(al);
        }
      }
    }
    frame_size = (frame_size + 15) / 16 * 16;
    if (sp_ < Layout::kStackLimit + frame_size)
      trap(TrapKind::StackOverflow, sp_);
    frame.saved_sp = sp_;
    sp_ -= frame_size;
    std::uint64_t cursor = sp_;
    for (const ir::AllocaInst* al : allocas) {
      const auto align = std::max<std::uint64_t>(al->allocated_type()->alignment(), 1);
      cursor = (cursor + align - 1) / align * align;
      frame.regs[al->id()] = cursor;
      cursor += al->allocated_type()->size_in_bytes();
    }

    frame.block = fn.entry();
    frame.prev_block = nullptr;
    frame.index = 0;
    frame.call_site = site;
    frames_.push_back(std::move(frame));
  }

  void maybe_snapshot() {
    if (next_snapshot_at_ == 0 || executed_ < next_snapshot_at_ ||
        !limits_.snapshot_sink)
      return;
    Snapshot snap;
    snap.frames = frames_;
    snap.sp = sp_;
    snap.executed = executed_;
    snap.next_frame_id = next_frame_id_;
    snap.memory = memory_.snapshot();
    snap.runtime = runtime_.save();
    next_snapshot_at_ = executed_ + limits_.snapshot_stride;
    limits_.snapshot_sink(std::move(snap));
  }

  /// Runs the frame stack to completion; returns the entry's return value.
  std::uint64_t exec_loop() {
    while (true) {
      maybe_snapshot();
      Frame& frame = frames_.back();
      const ir::Instruction& instr = *frame.block->instr(frame.index);
      bump_instruction_count();
      if (hook_ != nullptr && hook_->detached()) {
        const std::uint64_t at = hook_->rearm_at();
        if (at == 0) {
          hook_ = nullptr;  // rest of the run executes at unhooked speed
        } else if (executed_ >= at) {
          hook_->rearm();  // dormant hook reached its re-arm point
        }
      }
      // Dormant hooks (detached with a future rearm_at) are suppressed for
      // the whole instruction: live_hook_ gates every callback site below.
      live_hook_ = hook_ != nullptr && !hook_->detached() ? hook_ : nullptr;
      if (live_hook_ != nullptr) live_hook_->on_instruction(instr);

      switch (instr.opcode()) {
        case Opcode::Phi: {
          // Evaluate the whole phi group atomically against prev_block.
          std::size_t index = frame.index;
          std::vector<std::pair<const ir::Instruction*, std::uint64_t>> updates;
          while (true) {
            const auto& phi =
                static_cast<const ir::PhiInst&>(*frame.block->instr(index));
            const ir::Value* in = phi.value_for_block(frame.prev_block);
            assert(in != nullptr && "phi has no edge for predecessor");
            updates.emplace_back(&phi, read_operand(frame, phi, in));
            if (index + 1 >= frame.block->size() ||
                frame.block->instr(index + 1)->opcode() != Opcode::Phi)
              break;
            ++index;
            bump_instruction_count();
            if (live_hook_ != nullptr)
              live_hook_->on_instruction(*frame.block->instr(index));
          }
          for (auto& [phi, raw] : updates) set_result(frame, *phi, raw);
          frame.index = index + 1;
          continue;
        }
        case Opcode::Br: {
          const auto& br = static_cast<const ir::BranchInst&>(instr);
          const ir::BasicBlock* next;
          if (br.is_conditional()) {
            const std::uint64_t cond =
                read_operand(frame, instr, br.condition()) & 1;
            next = cond ? br.true_target() : br.false_target();
          } else {
            next = br.true_target();
          }
          frame.prev_block = frame.block;
          frame.block = next;
          frame.index = 0;
          continue;
        }
        case Opcode::Ret: {
          const auto& ret = static_cast<const ir::RetInst&>(instr);
          const std::uint64_t raw =
              ret.has_value() ? read_operand(frame, instr, ret.value()) : 0;
          sp_ = frame.saved_sp;
          const ir::Instruction* site = frame.call_site;
          frames_.pop_back();
          if (frames_.empty()) return raw;
          Frame& caller = frames_.back();
          if (site->has_result()) set_result(caller, *site, raw);
          ++caller.index;
          continue;
        }
        case Opcode::Store: {
          const std::uint64_t value =
              read_operand(frame, instr, instr.operand(0));
          const std::uint64_t addr =
              read_operand(frame, instr, instr.operand(1));
          const ir::Type* t = instr.operand(0)->type();
          const auto size = static_cast<unsigned>(t->size_in_bytes());
          if (live_hook_ != nullptr)
            live_hook_->on_memory_access(instr, addr, size, /*is_store=*/true);
          memory_.write(addr, size, value & type_mask(t));
          ++frame.index;
          continue;
        }
        case Opcode::Call: {
          const auto& call = static_cast<const ir::CallInst&>(instr);
          std::vector<std::uint64_t> args;
          args.reserve(call.num_args());
          for (unsigned i = 0; i < call.num_args(); ++i)
            args.push_back(read_operand(frame, instr, call.arg(i)));
          if (call.callee()->is_builtin()) {
            const std::uint64_t raw =
                runtime_.call_builtin(call.callee()->name(), args);
            if (instr.has_result()) set_result(frame, instr, raw);
            ++frame.index;
            continue;
          }
          const std::uint64_t caller_id = frame.id;
          // push_frame may reallocate frames_, invalidating `frame`; the
          // caller's index advances when the callee returns (Ret case).
          push_frame(*call.callee(), std::move(args), &call, caller_id);
          continue;
        }
        default: {
          const std::uint64_t raw = evaluate(frame, instr);
          set_result(frame, instr, raw);
          ++frame.index;
          continue;
        }
      }
    }
  }

  void set_result(Frame& frame, const ir::Instruction& instr,
                  std::uint64_t raw) {
    raw &= type_mask(instr.type());
    if (live_hook_ != nullptr) {
      raw = live_hook_->on_result({frame.id, &instr}, raw);
      raw &= type_mask(instr.type());
    }
    frame.regs[instr.id()] = raw;
  }

  std::uint64_t evaluate(Frame& frame, const ir::Instruction& instr) {
    const Opcode op = instr.opcode();
    if (ir::is_int_binary(op)) return eval_int_binary(frame, instr);
    if (ir::is_fp_binary(op)) return eval_fp_binary(frame, instr);
    if (ir::is_cast(op)) return eval_cast(frame, instr);
    switch (op) {
      case Opcode::ICmp: return eval_icmp(frame, instr);
      case Opcode::FCmp: return eval_fcmp(frame, instr);
      case Opcode::Alloca:
        return frame.regs[instr.id()];  // address assigned at frame setup
      case Opcode::Load: {
        const std::uint64_t addr = read_operand(frame, instr, instr.operand(0));
        const ir::Type* t = instr.type();
        const auto size = static_cast<unsigned>(t->size_in_bytes());
        if (live_hook_ != nullptr)
          live_hook_->on_memory_access(instr, addr, size, /*is_store=*/false);
        return memory_.read(addr, size) & type_mask(t);
      }
      case Opcode::Gep: return eval_gep(frame, instr);
      case Opcode::Select: {
        const std::uint64_t cond = read_operand(frame, instr, instr.operand(0)) & 1;
        // Both arms are read (they are data dependences, not control).
        const std::uint64_t tv = read_operand(frame, instr, instr.operand(1));
        const std::uint64_t fv = read_operand(frame, instr, instr.operand(2));
        return cond ? tv : fv;
      }
      default:
        trap(TrapKind::Unreachable, 0, ir::opcode_name(op));
    }
  }

  std::uint64_t eval_int_binary(Frame& frame, const ir::Instruction& instr) {
    const unsigned bits = instr.type()->int_bits();
    const std::uint64_t mask = faultlab::low_mask(bits);
    const std::uint64_t a = read_operand(frame, instr, instr.operand(0)) & mask;
    const std::uint64_t b = read_operand(frame, instr, instr.operand(1)) & mask;
    const std::int64_t sa = sign_extend(a, bits);
    const std::int64_t sb = sign_extend(b, bits);
    switch (instr.opcode()) {
      case Opcode::Add: return (a + b) & mask;
      case Opcode::Sub: return (a - b) & mask;
      case Opcode::Mul: return (a * b) & mask;
      case Opcode::SDiv: {
        if (sb == 0) trap(TrapKind::DivideByZero, 0);
        if (sb == -1 && sa == int_min_of(bits))
          trap(TrapKind::DivideByZero, 0, "division overflow");  // x86 #DE
        return static_cast<std::uint64_t>(sa / sb) & mask;
      }
      case Opcode::UDiv:
        if (b == 0) trap(TrapKind::DivideByZero, 0);
        return (a / b) & mask;
      case Opcode::SRem: {
        if (sb == 0) trap(TrapKind::DivideByZero, 0);
        if (sb == -1 && sa == int_min_of(bits))
          trap(TrapKind::DivideByZero, 0, "division overflow");  // x86 #DE
        return static_cast<std::uint64_t>(sa % sb) & mask;
      }
      case Opcode::URem:
        if (b == 0) trap(TrapKind::DivideByZero, 0);
        return (a % b) & mask;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: {
        const unsigned amount = shift_amount(b, bits);
        return (a << amount) & mask;
      }
      case Opcode::LShr: {
        const unsigned amount = shift_amount(b, bits);
        return (a >> amount) & mask;
      }
      case Opcode::AShr: {
        const unsigned amount = shift_amount(b, bits);
        return static_cast<std::uint64_t>(sa >> amount) & mask;
      }
      default:
        trap(TrapKind::Unreachable, 0);
    }
  }

  /// x86-style shift-count masking so VM and simulator agree.
  static unsigned shift_amount(std::uint64_t b, unsigned bits) {
    return static_cast<unsigned>(b & (bits >= 64 ? 63 : 31));
  }

  static std::int64_t int_min_of(unsigned bits) {
    return bits >= 64 ? std::numeric_limits<std::int64_t>::min()
                      : -(std::int64_t{1} << (bits - 1));
  }

  std::uint64_t eval_fp_binary(Frame& frame, const ir::Instruction& instr) {
    const double a = double_of(read_operand(frame, instr, instr.operand(0)));
    const double b = double_of(read_operand(frame, instr, instr.operand(1)));
    switch (instr.opcode()) {
      case Opcode::FAdd: return bits_of(a + b);
      case Opcode::FSub: return bits_of(a - b);
      case Opcode::FMul: return bits_of(a * b);
      case Opcode::FDiv: return bits_of(a / b);  // IEEE: inf/NaN, no trap
      default:
        trap(TrapKind::Unreachable, 0);
    }
  }

  std::uint64_t eval_icmp(Frame& frame, const ir::Instruction& instr) {
    const auto& cmp = static_cast<const ir::ICmpInst&>(instr);
    const ir::Type* t = cmp.lhs()->type();
    const unsigned bits = t->register_bits();
    const std::uint64_t mask = faultlab::low_mask(bits);
    const std::uint64_t a = read_operand(frame, instr, cmp.lhs()) & mask;
    const std::uint64_t b = read_operand(frame, instr, cmp.rhs()) & mask;
    const std::int64_t sa = sign_extend(a, bits);
    const std::int64_t sb = sign_extend(b, bits);
    bool r = false;
    switch (cmp.predicate()) {
      case ir::ICmpPred::EQ: r = a == b; break;
      case ir::ICmpPred::NE: r = a != b; break;
      case ir::ICmpPred::SLT: r = sa < sb; break;
      case ir::ICmpPred::SLE: r = sa <= sb; break;
      case ir::ICmpPred::SGT: r = sa > sb; break;
      case ir::ICmpPred::SGE: r = sa >= sb; break;
      case ir::ICmpPred::ULT: r = a < b; break;
      case ir::ICmpPred::ULE: r = a <= b; break;
      case ir::ICmpPred::UGT: r = a > b; break;
      case ir::ICmpPred::UGE: r = a >= b; break;
    }
    return r ? 1 : 0;
  }

  std::uint64_t eval_fcmp(Frame& frame, const ir::Instruction& instr) {
    const auto& cmp = static_cast<const ir::FCmpInst&>(instr);
    const double a = double_of(read_operand(frame, instr, cmp.lhs()));
    const double b = double_of(read_operand(frame, instr, cmp.rhs()));
    bool r = false;
    switch (cmp.predicate()) {  // ordered: NaN compares false
      case ir::FCmpPred::OEQ: r = a == b; break;
      case ir::FCmpPred::ONE: r = a < b || a > b; break;
      case ir::FCmpPred::OLT: r = a < b; break;
      case ir::FCmpPred::OLE: r = a <= b; break;
      case ir::FCmpPred::OGT: r = a > b; break;
      case ir::FCmpPred::OGE: r = a >= b; break;
    }
    return r ? 1 : 0;
  }

  std::uint64_t eval_cast(Frame& frame, const ir::Instruction& instr) {
    const std::uint64_t v = read_operand(frame, instr, instr.operand(0));
    const ir::Type* from = instr.operand(0)->type();
    const ir::Type* to = instr.type();
    switch (instr.opcode()) {
      case Opcode::Trunc:
        return v & type_mask(to);
      case Opcode::ZExt:
        return v & type_mask(from);
      case Opcode::SExt:
        return static_cast<std::uint64_t>(
                   sign_extend(v, from->int_bits())) & type_mask(to);
      case Opcode::FPToSI: {
        const double d = double_of(v);
        std::int64_t out;
        // cvttsd2si semantics: out-of-range / NaN -> "integer indefinite".
        if (std::isnan(d) || d >= 9.2233720368547758e18 ||
            d < -9.2233720368547758e18) {
          out = std::numeric_limits<std::int64_t>::min();
        } else {
          out = static_cast<std::int64_t>(d);
        }
        return static_cast<std::uint64_t>(out) & type_mask(to);
      }
      case Opcode::SIToFP:
        return bits_of(static_cast<double>(
            sign_extend(v, from->int_bits())));
      case Opcode::Bitcast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        return v & type_mask(to);
      default:
        trap(TrapKind::Unreachable, 0);
    }
  }

  std::uint64_t eval_gep(Frame& frame, const ir::Instruction& instr) {
    const auto& gep = static_cast<const ir::GepInst&>(instr);
    std::uint64_t addr = read_operand(frame, instr, gep.base());
    const ir::Type* current = gep.base()->type()->pointee();
    for (unsigned i = 0; i < gep.num_indices(); ++i) {
      const std::uint64_t raw = read_operand(frame, instr, gep.index(i));
      const std::int64_t idx =
          sign_extend(raw, gep.index(i)->type()->register_bits());
      if (i == 0) {
        addr += static_cast<std::uint64_t>(
            idx * static_cast<std::int64_t>(current->size_in_bytes()));
      } else if (current->is_array()) {
        current = current->array_element();
        addr += static_cast<std::uint64_t>(
            idx * static_cast<std::int64_t>(current->size_in_bytes()));
      } else {  // struct: verifier guarantees constant index
        addr += current->struct_field_offset(static_cast<std::size_t>(idx));
        current = current->struct_fields()[static_cast<std::size_t>(idx)];
      }
    }
    return addr;
  }

  static constexpr std::size_t kMaxCallDepth = 4096;

  const ir::Module& module_;
  const machine::GlobalLayout& layout_;
  ExecHook* hook_ = nullptr;
  // hook_ gated per instruction: null while the hook is dormant awaiting
  // its re-arm point, so no callback fires mid-sleep.
  ExecHook* live_hook_ = nullptr;
  RunLimits limits_;
  machine::Memory memory_;
  machine::Runtime runtime_;
  std::vector<Frame> frames_;
  std::uint64_t sp_ = Layout::kStackTop;
  std::uint64_t executed_ = 0;
  std::uint64_t next_frame_id_ = 1;
  std::uint64_t next_snapshot_at_ = 0;
};

Interpreter::Interpreter(const ir::Module& module, ExecHook* hook)
    : module_(module), hook_(hook), layout_(module) {}

Interpreter::~Interpreter() = default;

RunResult Interpreter::run(const std::string& entry, const RunLimits& limits) {
  if (impl_ == nullptr) impl_ = std::make_unique<Impl>(module_, layout_);
  impl_->prepare(hook_, limits);
  RunResult r = impl_->run(entry);
  record_run_instructions(r.dynamic_instructions);
  return r;
}

RunResult Interpreter::run_from(const Snapshot& snapshot,
                                const RunLimits& limits) {
  if (impl_ == nullptr) impl_ = std::make_unique<Impl>(module_, layout_);
  impl_->prepare(hook_, limits);
  RunResult r = impl_->run_from(snapshot);
  // dynamic_instructions is snapshot-primed (absolute position in the
  // golden schedule); the histogram tracks work actually done here.
  record_run_instructions(r.dynamic_instructions - snapshot.executed);
  return r;
}

}  // namespace faultlab::vm
