// IR interpreter ("the hardware LLFI sees").
//
// Executes a verified IR module directly, with an instrumentation hook that
// observes every dynamic instruction, can rewrite the destination value of
// any value-producing instruction (fault injection), and observes operand
// reads (activation tracking). Runtime values are raw 64-bit patterns;
// their interpretation follows the instruction's static type.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/module.h"
#include "machine/memory.h"
#include "machine/runtime.h"

namespace faultlab::vm {

/// Identifies a dynamic SSA value: which frame produced it and which
/// instruction defined it.
struct DynValueId {
  std::uint64_t frame = 0;
  const ir::Instruction* def = nullptr;
  bool operator==(const DynValueId&) const = default;
};

/// Instrumentation interface. The default implementation is a no-op, so
/// plain runs pay almost nothing.
class ExecHook {
 public:
  virtual ~ExecHook() = default;
  /// Called before executing each dynamic instruction.
  virtual void on_instruction(const ir::Instruction& instr) { (void)instr; }
  /// Called with the raw result of a value-producing instruction; the
  /// returned value is what gets written to the virtual register.
  virtual std::uint64_t on_result(const DynValueId& id, std::uint64_t raw) {
    (void)id;
    return raw;
  }
  /// Called when `user` reads the value identified by `id`.
  virtual void on_operand_read(const DynValueId& id,
                               const ir::Instruction& user) {
    (void)id;
    (void)user;
  }
  /// Called when `user` reads formal argument `index` of frame `frame`.
  virtual void on_argument_read(std::uint64_t frame, unsigned index,
                                const ir::Instruction& user) {
    (void)frame;
    (void)index;
    (void)user;
  }
  /// Called after a load/store computed its address (before the access).
  virtual void on_memory_access(const ir::Instruction& instr,
                                std::uint64_t address, unsigned size,
                                bool is_store) {
    (void)instr;
    (void)address;
    (void)size;
    (void)is_store;
  }
  /// Called when `call` creates callee frame `callee_frame` (after the
  /// argument operands were read, before the body runs).
  virtual void on_call(const ir::CallInst& call, std::uint64_t caller_frame,
                       std::uint64_t callee_frame) {
    (void)call;
    (void)caller_frame;
    (void)callee_frame;
  }
};

/// Resumable interpreter state, captured between two dynamic instructions.
/// Holds the explicit call-frame stack plus copy-on-write memory and
/// runtime state, so capturing is O(live frames + mapped pages). A snapshot
/// with `executed == n` resumes exactly before dynamic instruction n+1; all
/// pointers reference the (const, outliving) module, so any interpreter
/// over the same module can run_from() it — including concurrently, each
/// trial getting its own copy-on-write view of the pages.
struct Snapshot {
  struct Frame {
    const ir::Function* function = nullptr;
    std::uint64_t id = 0;
    std::vector<std::uint64_t> regs;  // indexed by Instruction::id()
    std::vector<std::uint64_t> args;
    const ir::BasicBlock* block = nullptr;
    const ir::BasicBlock* prev_block = nullptr;  // phi predecessor
    std::size_t index = 0;          // next instruction within block
    std::uint64_t saved_sp = 0;     // caller's stack pointer
    const ir::Instruction* call_site = nullptr;  // caller instr receiving ret
  };

  std::vector<Frame> frames;  // bottom (entry) first
  std::uint64_t sp = 0;
  std::uint64_t executed = 0;
  std::uint64_t next_frame_id = 1;
  machine::Memory::Snapshot memory;
  machine::Runtime::State runtime;
};

struct RunLimits {
  /// Budget on *total* dynamic instructions, including any golden prefix a
  /// resumed run skipped: run_from() keeps counting from the snapshot's
  /// `executed`, so a restored trial times out exactly where a full run
  /// would.
  std::uint64_t max_instructions = 200'000'000;
  /// When nonzero, capture a Snapshot every `snapshot_stride` retired
  /// instructions and hand it to `snapshot_sink`.
  std::uint64_t snapshot_stride = 0;
  std::function<void(Snapshot&&)> snapshot_sink;
};

struct RunResult {
  bool trapped = false;
  machine::TrapKind trap = machine::TrapKind::UnmappedAccess;
  bool timed_out = false;
  std::int64_t exit_value = 0;
  std::uint64_t dynamic_instructions = 0;
  std::string output;

  bool completed() const noexcept { return !trapped && !timed_out; }
};

class Interpreter {
 public:
  /// The module must outlive the interpreter, be verifier-clean, and have
  /// instruction ids assigned (Function::renumber — the frontend, the pass
  /// pipeline and the verifier all leave modules renumbered). Keeping the
  /// module logically const here makes concurrent interpreters over one
  /// module safe, which the campaign runner's thread pool relies on.
  explicit Interpreter(const ir::Module& module, ExecHook* hook = nullptr);

  /// Executes `entry` (no arguments) to completion; every call starts from
  /// a fresh memory image.
  RunResult run(const std::string& entry = "main",
                const RunLimits& limits = {});

  /// Resumes execution from `snapshot` (captured on this module) and runs
  /// to completion. The result reports totals for the whole logical run:
  /// `dynamic_instructions` and `output` include the skipped prefix, so
  /// Crash/SDC/Hang/Benign classification matches a from-scratch run.
  RunResult run_from(const Snapshot& snapshot, const RunLimits& limits = {});

 private:
  class Impl;
  const ir::Module& module_;
  ExecHook* hook_;
  machine::GlobalLayout layout_;
};

}  // namespace faultlab::vm
