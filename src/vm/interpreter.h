// IR interpreter ("the hardware LLFI sees").
//
// Executes a verified IR module directly, with an instrumentation hook that
// observes every dynamic instruction, can rewrite the destination value of
// any value-producing instruction (fault injection), and observes operand
// reads (activation tracking). Runtime values are raw 64-bit patterns;
// their interpretation follows the instruction's static type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"
#include "machine/memory.h"
#include "machine/runtime.h"

namespace faultlab::vm {

/// Identifies a dynamic SSA value: which frame produced it and which
/// instruction defined it.
struct DynValueId {
  std::uint64_t frame = 0;
  const ir::Instruction* def = nullptr;
  bool operator==(const DynValueId&) const = default;
};

/// Instrumentation interface. The default implementation is a no-op, so
/// plain runs pay almost nothing.
class ExecHook {
 public:
  virtual ~ExecHook() = default;
  /// True once the hook has nothing left to observe right now. The
  /// interpreter checks this at instruction boundaries; when `rearm_at()`
  /// is zero it drops the hook for the rest of the run (the transient
  /// fast path), so an injection hook whose fault has already activated
  /// stops taxing every remaining instruction with virtual calls. With a
  /// nonzero `rearm_at()` the hook merely goes dormant: callbacks are
  /// suppressed until the executed-instruction count reaches the re-arm
  /// point, then the interpreter calls `rearm()` and resumes delivery.
  /// The hook object stays alive and queryable either way.
  bool detached() const noexcept { return detached_; }
  /// Absolute executed-instruction count at which a dormant hook wants
  /// callbacks again; zero means detachment is final.
  std::uint64_t rearm_at() const noexcept { return rearm_at_; }
  /// Reactivates a dormant hook. Called by the executor when the re-arm
  /// point is reached; not for subclass use.
  void rearm() noexcept {
    detached_ = false;
    rearm_at_ = 0;
  }
  /// Called before executing each dynamic instruction.
  virtual void on_instruction(const ir::Instruction& instr) { (void)instr; }
  /// Called with the raw result of a value-producing instruction; the
  /// returned value is what gets written to the virtual register.
  virtual std::uint64_t on_result(const DynValueId& id, std::uint64_t raw) {
    (void)id;
    return raw;
  }
  /// Called when `user` reads the value identified by `id`.
  virtual void on_operand_read(const DynValueId& id,
                               const ir::Instruction& user) {
    (void)id;
    (void)user;
  }
  /// Called when `user` reads formal argument `index` of frame `frame`.
  virtual void on_argument_read(std::uint64_t frame, unsigned index,
                                const ir::Instruction& user) {
    (void)frame;
    (void)index;
    (void)user;
  }
  /// Called after a load/store computed its address (before the access).
  virtual void on_memory_access(const ir::Instruction& instr,
                                std::uint64_t address, unsigned size,
                                bool is_store) {
    (void)instr;
    (void)address;
    (void)size;
    (void)is_store;
  }
  /// Called when `call` creates callee frame `callee_frame` (after the
  /// argument operands were read, before the body runs).
  virtual void on_call(const ir::CallInst& call, std::uint64_t caller_frame,
                       std::uint64_t callee_frame) {
    (void)call;
    (void)caller_frame;
    (void)callee_frame;
  }

 protected:
  /// For subclasses whose instrumentation completes mid-run. Passing a
  /// nonzero `rearm_at` requests dormancy instead of final detachment:
  /// the executor suppresses callbacks until that many instructions have
  /// executed (absolute count, including any restored prefix), then
  /// re-arms the hook. Time-triggered and persistent fault models use
  /// this to sleep through uninteresting stretches without giving up the
  /// hook pointer.
  void detach(std::uint64_t rearm_at = 0) noexcept {
    detached_ = true;
    rearm_at_ = rearm_at;
  }

 private:
  bool detached_ = false;
  std::uint64_t rearm_at_ = 0;
};

/// Resumable interpreter state, captured between two dynamic instructions.
/// Holds the explicit call-frame stack plus copy-on-write memory and
/// runtime state, so capturing is O(live frames + mapped pages). A snapshot
/// with `executed == n` resumes exactly before dynamic instruction n+1; all
/// pointers reference the (const, outliving) module, so any interpreter
/// over the same module can run_from() it — including concurrently, each
/// trial getting its own copy-on-write view of the pages.
struct Snapshot {
  struct Frame {
    const ir::Function* function = nullptr;
    std::uint64_t id = 0;
    std::vector<std::uint64_t> regs;  // indexed by Instruction::id()
    std::vector<std::uint64_t> args;
    const ir::BasicBlock* block = nullptr;
    const ir::BasicBlock* prev_block = nullptr;  // phi predecessor
    std::size_t index = 0;          // next instruction within block
    std::uint64_t saved_sp = 0;     // caller's stack pointer
    const ir::Instruction* call_site = nullptr;  // caller instr receiving ret
  };

  std::vector<Frame> frames;  // bottom (entry) first
  std::uint64_t sp = 0;
  std::uint64_t executed = 0;
  std::uint64_t next_frame_id = 1;
  machine::Memory::Snapshot memory;
  machine::Runtime::State runtime;
};

struct RunLimits {
  /// Budget on *total* dynamic instructions, including any golden prefix a
  /// resumed run skipped: run_from() keeps counting from the snapshot's
  /// `executed`, so a restored trial times out exactly where a full run
  /// would.
  std::uint64_t max_instructions = 200'000'000;
  /// When nonzero, capture a Snapshot every `snapshot_stride` retired
  /// instructions and hand it to `snapshot_sink`.
  std::uint64_t snapshot_stride = 0;
  std::function<void(Snapshot&&)> snapshot_sink;
};

struct RunResult {
  bool trapped = false;
  machine::TrapKind trap = machine::TrapKind::UnmappedAccess;
  /// Static location of the trap when `trapped`: the per-function id of
  /// the instruction that was executing (same id space as the injectors'
  /// static_site). Zero otherwise.
  std::uint64_t trap_pc = 0;
  /// Faulting address carried by the trap (the TrapException's address
  /// operand — memory address, divisor site, or jump target).
  std::uint64_t trap_address = 0;
  bool timed_out = false;
  std::int64_t exit_value = 0;
  std::uint64_t dynamic_instructions = 0;
  std::string output;
  /// Page-table entries rewritten by run_from()'s restore, and whether it
  /// took the O(dirty) delta path (checkpoint observability; both 0/false
  /// for run()).
  std::uint64_t restored_pages = 0;
  bool delta_restored = false;

  bool completed() const noexcept { return !trapped && !timed_out; }
};

class Interpreter {
 public:
  /// The module must outlive the interpreter, be verifier-clean, and have
  /// instruction ids assigned (Function::renumber — the frontend, the pass
  /// pipeline and the verifier all leave modules renumbered). Keeping the
  /// module logically const here makes concurrent interpreters over one
  /// module safe, which the campaign runner's thread pool relies on.
  explicit Interpreter(const ir::Module& module, ExecHook* hook = nullptr);
  ~Interpreter();
  // Execution state (impl_) holds references into this object; moving or
  // copying would leave them dangling.
  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  /// Swaps the instrumentation hook for subsequent runs. A resident
  /// interpreter serves many trials, each with its own injection hook.
  void set_hook(ExecHook* hook) noexcept { hook_ = hook; }

  /// Executes `entry` (no arguments) to completion; every call starts from
  /// a fresh memory image.
  RunResult run(const std::string& entry = "main",
                const RunLimits& limits = {});

  /// Resumes execution from `snapshot` (captured on this module) and runs
  /// to completion. The result reports totals for the whole logical run:
  /// `dynamic_instructions` and `output` include the skipped prefix, so
  /// Crash/SDC/Hang/Benign classification matches a from-scratch run.
  ///
  /// The execution state is resident: it persists across calls, so
  /// resuming the same snapshot repeatedly rides Memory::restore_delta()'s
  /// O(pages the previous trial touched) path, and frame/register vectors
  /// reuse their allocations instead of being rebuilt per trial.
  RunResult run_from(const Snapshot& snapshot, const RunLimits& limits = {});

  /// Resumes `count` interpreters (lanes) from the same snapshot and runs
  /// them to completion in lockstep: one decoded micro-op fetch drives
  /// every active lane, and a lane whose fault diverges control flow
  /// (branch target, call depth, trap, or exit differs from the pack
  /// leader) masks off and finishes on the existing single-lane path.
  /// results[i] is byte-identical to what `lanes[i]->run_from(snapshot,
  /// limits)` would produce — the pack only amortizes fetch/dispatch,
  /// never semantics. Falls back to sequential run_from calls when packing
  /// cannot apply (one lane, switch dispatch mode, a snapshot sink armed,
  /// mismatched modules, or more than machine::kMaxLanes lanes).
  static void run_lockstep(Interpreter* const* lanes, std::size_t count,
                           const Snapshot& snapshot, const RunLimits& limits,
                           RunResult* results);

 private:
  class Impl;
  const ir::Module& module_;
  ExecHook* hook_;
  machine::GlobalLayout layout_;
  std::unique_ptr<Impl> impl_;  // lazily created, reused across runs
};

}  // namespace faultlab::vm
