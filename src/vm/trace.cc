#include "vm/trace.h"

#include <algorithm>

#include "ir/constant.h"
#include "machine/dispatch.h"
#include "machine/runtime.h"
#include "support/bitutil.h"

namespace faultlab::vm {

namespace {

using ir::Opcode;

std::uint64_t type_mask(const ir::Type* t) {
  return faultlab::low_mask(t->register_bits());
}

}  // namespace

TraceCache::TraceCache(const machine::GlobalLayout& layout)
    : layout_(layout) {}

TraceCache::~TraceCache() {
  if (decoded_ != 0)
    machine::dispatch_counters().decoded_blocks.fetch_sub(
        decoded_, std::memory_order_relaxed);
}

TraceFunction& TraceCache::function(const ir::Function& fn) {
  auto it = functions_.find(&fn);
  if (it != functions_.end()) return *it->second;

  auto tf = std::make_unique<TraceFunction>();
  tf->fn = &fn;
  tf->num_instructions = fn.num_instructions();
  // Same walk as the slow path's frame prologue: allocas in program order,
  // each aligned then appended, the whole frame rounded to 16 bytes.
  std::uint64_t frame_size = 0;
  for (const auto& bb : fn.blocks()) {
    for (const auto& instr : bb->instructions()) {
      if (auto* al = dynamic_cast<const ir::AllocaInst*>(instr.get())) {
        const auto align =
            std::max<std::uint64_t>(al->allocated_type()->alignment(), 1);
        frame_size = (frame_size + align - 1) / align * align;
        frame_size += al->allocated_type()->size_in_bytes();
        tf->allocas.push_back(
            {al->id(), align, al->allocated_type()->size_in_bytes()});
      }
    }
  }
  tf->frame_size = (frame_size + 15) / 16 * 16;

  tf->blocks.resize(fn.num_blocks());
  tf->block_index.reserve(fn.num_blocks());
  for (std::size_t i = 0; i < fn.num_blocks(); ++i) {
    tf->blocks[i].block = fn.block(i);
    tf->block_index.emplace(fn.block(i), static_cast<std::uint32_t>(i));
  }
  return *functions_.emplace(&fn, std::move(tf)).first->second;
}

TraceBlock* TraceCache::block(TraceFunction& tf, const ir::BasicBlock* bb) {
  TraceBlock* tb = tf.slot_for(bb);
  if (tb == nullptr) return nullptr;
  if (tb->state == TraceBlock::State::Empty) decode(tf, *tb);
  return tb->state == TraceBlock::State::Ready ? tb : nullptr;
}

namespace {

/// Pre-resolves one operand read. Mirrors Impl::read_operand exactly for
/// the hook-free case (the fast path never runs with a live hook).
VSlot resolve_slot(const machine::GlobalLayout& layout, const ir::Value* v) {
  VSlot slot;
  switch (v->vkind()) {
    case ir::ValueKind::ConstantInt:
      slot.imm = static_cast<const ir::ConstantInt*>(v)->raw();
      return slot;
    case ir::ValueKind::ConstantDouble:
      slot.imm = bits_of(static_cast<const ir::ConstantDouble*>(v)->value());
      return slot;
    case ir::ValueKind::ConstantNull:
      slot.imm = 0;
      return slot;
    case ir::ValueKind::GlobalVariable:
      slot.imm = layout.address_of(static_cast<const ir::GlobalVariable*>(v));
      return slot;
    case ir::ValueKind::Argument:
      slot.kind = VSlot::Kind::Arg;
      slot.index = static_cast<const ir::Argument*>(v)->index();
      return slot;
    case ir::ValueKind::Instruction:
      slot.kind = VSlot::Kind::Reg;
      slot.index = static_cast<const ir::Instruction*>(v)->id();
      return slot;
  }
  return slot;
}

VOp icmp_op(ir::ICmpPred p) {
  switch (p) {
    case ir::ICmpPred::EQ: return VOp::IcmpEq;
    case ir::ICmpPred::NE: return VOp::IcmpNe;
    case ir::ICmpPred::SLT: return VOp::IcmpSlt;
    case ir::ICmpPred::SLE: return VOp::IcmpSle;
    case ir::ICmpPred::SGT: return VOp::IcmpSgt;
    case ir::ICmpPred::SGE: return VOp::IcmpSge;
    case ir::ICmpPred::ULT: return VOp::IcmpUlt;
    case ir::ICmpPred::ULE: return VOp::IcmpUle;
    case ir::ICmpPred::UGT: return VOp::IcmpUgt;
    case ir::ICmpPred::UGE: return VOp::IcmpUge;
  }
  return VOp::IcmpEq;
}

VOp fcmp_op(ir::FCmpPred p) {
  switch (p) {
    case ir::FCmpPred::OEQ: return VOp::FcmpOeq;
    case ir::FCmpPred::ONE: return VOp::FcmpOne;
    case ir::FCmpPred::OLT: return VOp::FcmpOlt;
    case ir::FCmpPred::OLE: return VOp::FcmpOle;
    case ir::FCmpPred::OGT: return VOp::FcmpOgt;
    case ir::FCmpPred::OGE: return VOp::FcmpOge;
  }
  return VOp::FcmpOeq;
}

VOp int_binary_op(Opcode op) {
  switch (op) {
    case Opcode::Add: return VOp::Add;
    case Opcode::Sub: return VOp::Sub;
    case Opcode::Mul: return VOp::Mul;
    case Opcode::SDiv: return VOp::SDiv;
    case Opcode::UDiv: return VOp::UDiv;
    case Opcode::SRem: return VOp::SRem;
    case Opcode::URem: return VOp::URem;
    case Opcode::And: return VOp::And;
    case Opcode::Or: return VOp::Or;
    case Opcode::Xor: return VOp::Xor;
    case Opcode::Shl: return VOp::Shl;
    case Opcode::LShr: return VOp::LShr;
    case Opcode::AShr: return VOp::AShr;
    default: return VOp::Pad;
  }
}

VOp fp_binary_op(Opcode op) {
  switch (op) {
    case Opcode::FAdd: return VOp::FAdd;
    case Opcode::FSub: return VOp::FSub;
    case Opcode::FMul: return VOp::FMul;
    case Opcode::FDiv: return VOp::FDiv;
    default: return VOp::Pad;
  }
}

}  // namespace

void TraceCache::decode(TraceFunction& tf, TraceBlock& tb) {
  const ir::BasicBlock& bb = *tb.block;
  tb.uops.assign(bb.size(), VUOp{});
  bool ok = true;

  for (std::size_t i = 0; i < bb.size() && ok; ++i) {
    const ir::Instruction& instr = *bb.instr(i);
    VUOp& u = tb.uops[i];
    const Opcode op = instr.opcode();

    if (ir::is_int_binary(op)) {
      u.op = int_binary_op(op);
      u.bits = static_cast<std::uint8_t>(instr.type()->int_bits());
      u.imm = faultlab::low_mask(instr.type()->int_bits());  // operand mask
      u.mask = type_mask(instr.type());
      u.dst = instr.id();
      u.a = resolve_slot(layout_, instr.operand(0));
      u.b = resolve_slot(layout_, instr.operand(1));
      continue;
    }
    if (ir::is_fp_binary(op)) {
      u.op = fp_binary_op(op);
      u.mask = type_mask(instr.type());
      u.dst = instr.id();
      u.a = resolve_slot(layout_, instr.operand(0));
      u.b = resolve_slot(layout_, instr.operand(1));
      continue;
    }

    switch (op) {
      case Opcode::ICmp: {
        const auto& cmp = static_cast<const ir::ICmpInst&>(instr);
        u.op = icmp_op(cmp.predicate());
        u.bits = static_cast<std::uint8_t>(cmp.lhs()->type()->register_bits());
        u.imm = faultlab::low_mask(u.bits);
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, cmp.lhs());
        u.b = resolve_slot(layout_, cmp.rhs());
        break;
      }
      case Opcode::FCmp: {
        const auto& cmp = static_cast<const ir::FCmpInst&>(instr);
        u.op = fcmp_op(cmp.predicate());
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, cmp.lhs());
        u.b = resolve_slot(layout_, cmp.rhs());
        break;
      }
      case Opcode::Trunc:
      case Opcode::Bitcast:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        u.op = VOp::MaskCast;
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, instr.operand(0));
        break;
      case Opcode::ZExt:
        // eval returns v & mask(from); set_result masks with mask(to):
        // one pre-folded AND covers both.
        u.op = VOp::MaskCast;
        u.mask = type_mask(instr.operand(0)->type()) & type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, instr.operand(0));
        break;
      case Opcode::SExt:
        u.op = VOp::SExt;
        u.bits =
            static_cast<std::uint8_t>(instr.operand(0)->type()->int_bits());
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, instr.operand(0));
        break;
      case Opcode::FPToSI:
        u.op = VOp::FpToSi;
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, instr.operand(0));
        break;
      case Opcode::SIToFP:
        u.op = VOp::SiToFp;
        u.bits =
            static_cast<std::uint8_t>(instr.operand(0)->type()->int_bits());
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, instr.operand(0));
        break;
      case Opcode::Select:
        u.op = VOp::Select;
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, instr.operand(0));
        u.b = resolve_slot(layout_, instr.operand(1));
        u.c = resolve_slot(layout_, instr.operand(2));
        break;
      case Opcode::Alloca:
        u.op = VOp::Alloca;
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        break;
      case Opcode::Load:
        u.op = VOp::Load;
        u.size = static_cast<std::uint32_t>(instr.type()->size_in_bytes());
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, instr.operand(0));
        break;
      case Opcode::Store:
        u.op = VOp::Store;
        u.size = static_cast<std::uint32_t>(
            instr.operand(0)->type()->size_in_bytes());
        u.mask = type_mask(instr.operand(0)->type());
        u.a = resolve_slot(layout_, instr.operand(0));  // value
        u.b = resolve_slot(layout_, instr.operand(1));  // address
        break;
      case Opcode::Gep: {
        const auto& gep = static_cast<const ir::GepInst&>(instr);
        u.op = VOp::Gep;
        u.mask = type_mask(instr.type());
        u.dst = instr.id();
        u.a = resolve_slot(layout_, gep.base());
        u.imm = 0;  // accumulated constant offset
        u.pool = static_cast<std::uint32_t>(tb.gep_terms.size());
        const ir::Type* current = gep.base()->type()->pointee();
        for (unsigned k = 0; k < gep.num_indices() && ok; ++k) {
          const ir::Value* iv = gep.index(k);
          const unsigned ibits = iv->type()->register_bits();
          std::int64_t scale = 0;
          bool is_struct_hop = false;
          if (k == 0) {
            scale = static_cast<std::int64_t>(current->size_in_bytes());
          } else if (current->is_array()) {
            current = current->array_element();
            scale = static_cast<std::int64_t>(current->size_in_bytes());
          } else if (current->is_struct()) {
            is_struct_hop = true;
          } else {
            ok = false;  // malformed gep: leave it to the slow path's trap
            break;
          }
          if (is_struct_hop) {
            // The verifier guarantees struct indices are ConstantInt.
            if (iv->vkind() != ir::ValueKind::ConstantInt) {
              ok = false;
              break;
            }
            const std::int64_t idx = sign_extend(
                static_cast<const ir::ConstantInt*>(iv)->raw(), ibits);
            u.imm += current->struct_field_offset(
                static_cast<std::size_t>(idx));
            current = current->struct_fields()[static_cast<std::size_t>(idx)];
          } else if (iv->vkind() == ir::ValueKind::ConstantInt) {
            const std::int64_t idx = sign_extend(
                static_cast<const ir::ConstantInt*>(iv)->raw(), ibits);
            u.imm += static_cast<std::uint64_t>(idx * scale);
          } else {
            tb.gep_terms.push_back({resolve_slot(layout_, iv), scale,
                                    static_cast<std::uint8_t>(ibits)});
          }
        }
        u.n = static_cast<std::uint16_t>(tb.gep_terms.size() - u.pool);
        break;
      }
      case Opcode::Phi: {
        // Collapse the whole leading phi run into one group op at the
        // first phi's index; the rest become Pad (never executed: both
        // paths jump straight past the group).
        u.op = VOp::PhiGroup;
        u.pool = static_cast<std::uint32_t>(tb.phi_entries.size());
        std::size_t j = i;
        while (j < bb.size() && bb.instr(j)->opcode() == Opcode::Phi) {
          const auto& phi = static_cast<const ir::PhiInst&>(*bb.instr(j));
          PhiEntry entry;
          entry.dst = phi.id();
          entry.mask = type_mask(phi.type());
          entry.edges_at = static_cast<std::uint32_t>(tb.phi_edges.size());
          entry.edges_n = phi.num_incoming();
          for (unsigned e = 0; e < phi.num_incoming(); ++e)
            tb.phi_edges.push_back(
                {phi.incoming_block(e),
                 resolve_slot(layout_, phi.incoming_value(e))});
          tb.phi_entries.push_back(entry);
          if (j != i) tb.uops[j].op = VOp::Pad;
          ++j;
        }
        u.n = static_cast<std::uint16_t>(tb.phi_entries.size() - u.pool);
        i = j - 1;  // outer loop ++ lands just past the group
        break;
      }
      case Opcode::Br: {
        const auto& br = static_cast<const ir::BranchInst&>(instr);
        u.bb0 = br.true_target();
        u.tb0 = tf.slot_for(u.bb0);
        if (br.is_conditional()) {
          u.op = VOp::BrCond;
          u.a = resolve_slot(layout_, br.condition());
          u.bb1 = br.false_target();
          u.tb1 = tf.slot_for(u.bb1);
          ok = ok && u.tb0 != nullptr && u.tb1 != nullptr;
        } else {
          u.op = VOp::Br;
          ok = ok && u.tb0 != nullptr;
        }
        break;
      }
      case Opcode::Ret: {
        const auto& ret = static_cast<const ir::RetInst&>(instr);
        u.op = VOp::Ret;
        u.n = ret.has_value() ? 1 : 0;
        if (ret.has_value()) u.a = resolve_slot(layout_, ret.value());
        break;
      }
      case Opcode::Call: {
        const auto& call = static_cast<const ir::CallInst&>(instr);
        u.instr = &instr;
        u.callee = call.callee();
        u.pool = static_cast<std::uint32_t>(tb.call_args.size());
        u.n = static_cast<std::uint16_t>(call.num_args());
        for (unsigned k = 0; k < call.num_args(); ++k)
          tb.call_args.push_back(resolve_slot(layout_, call.arg(k)));
        if (call.callee()->is_builtin()) {
          u.op = VOp::CallBuiltin;
        } else {
          u.op = VOp::Call;
          u.callee_tf = &function(*call.callee());
        }
        if (instr.has_result()) {
          u.dst = instr.id();
          u.mask = type_mask(instr.type());
        }
        break;
      }
      default:
        ok = false;  // unknown opcode: the slow path owns its trap
        break;
    }
  }

  if (!ok || bb.terminator() == nullptr) {
    tb.state = TraceBlock::State::Poisoned;
    tb.uops.clear();
    tb.gep_terms.clear();
    tb.call_args.clear();
    tb.phi_entries.clear();
    tb.phi_edges.clear();
    return;
  }
  tb.state = TraceBlock::State::Ready;
  ++decoded_;
  machine::DispatchCounters& counters = machine::dispatch_counters();
  counters.trace_decodes.fetch_add(1, std::memory_order_relaxed);
  counters.decoded_blocks.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace faultlab::vm
