// Fault-campaign CLI: run a single configurable campaign and dump every
// trial — the level of control a researcher needs when debugging an
// injector or investigating a particular outcome.
//
//   ./build/examples/fault_campaign <app|-> <tool> <category> [trials] [seed] [csv]
//     app:      bzip2|libquantum|ocean|hmmer|mcf|raytrace, or '-' to read
//               mini-C source from stdin
//     tool:     llfi|pinfi
//     category: arithmetic|cast|cmp|load|all
//     csv:      optional path; writes the campaign's results CSV there
//               (used by the DeltaEquiv ctest pair to byte-compare runs)
#include <iostream>
#include <memory>
#include <sstream>

#include "apps/apps.h"
#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "fault/report.h"
#include "fault/scheduler.h"

int main(int argc, char** argv) {
  using namespace faultlab;

  if (argc < 4) {
    std::cerr << "usage: " << argv[0]
              << " <app|-> <llfi|pinfi> <category> [trials] [seed]\n";
    return 2;
  }
  const std::string app = argv[1];
  const std::string tool = argv[2];
  const auto category = ir::category_from_name(argv[3]);
  if (!category) {
    std::cerr << "unknown category: " << argv[3] << "\n";
    return 2;
  }
  const std::size_t trials =
      argc > 4 ? static_cast<std::size_t>(std::atol(argv[4])) : 50;
  const std::uint64_t seed =
      argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 1;

  std::string source;
  if (app == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    source = buf.str();
  } else {
    source = apps::benchmark(app).source;
  }

  driver::CompiledProgram prog = driver::compile(source, app);
  std::unique_ptr<fault::InjectorEngine> engine;
  if (tool == "llfi") {
    engine = std::make_unique<fault::LlfiEngine>(prog.module());
  } else if (tool == "pinfi") {
    engine = std::make_unique<fault::PinfiEngine>(prog.program());
  } else {
    std::cerr << "unknown tool: " << tool << "\n";
    return 2;
  }

  fault::CampaignConfig cfg;
  cfg.app = app;
  cfg.category = *category;
  cfg.trials = trials;
  cfg.seed = seed;

  fault::CampaignScheduler scheduler;
  scheduler.add(*engine, cfg);
  std::vector<fault::CampaignResult> results;
  try {
    results = scheduler.run();
  } catch (const fault::CampaignError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  const fault::CampaignResult& result = results.front();

  std::cout << engine->tool_name() << " on '" << app << "', category "
            << ir::category_name(*category) << ": N = "
            << result.profiled_count << " dynamic targets\n\n";
  std::cout << "trial  dyn-target       bit  outcome\n";
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const fault::TrialRecord& t = result.trials[i];
    std::printf("%5zu  %12llu  %4u  %s\n", i,
                static_cast<unsigned long long>(t.dynamic_target), t.bit,
                fault::outcome_name(t.outcome));
  }
  std::cout << "\ncrash " << result.crash << " | sdc " << result.sdc
            << " | benign " << result.benign << " | hang " << result.hang
            << " | not-activated " << result.not_activated << "  ("
            << result.activated() << " activated of "
            << result.trials.size() << ")\n";

  const fault::RunManifest& m = scheduler.manifest();
  std::printf("profiling %.3fs, trials %.3fs (%.0f trials/s), "
              "%zu injected, %zu threads\n",
              m.profile_seconds, result.wall_seconds,
              m.campaigns.front().trials_per_second(),
              result.injected_trials, m.threads);

  if (argc > 6) {
    fault::ResultSet rs;
    rs.add(std::move(results.front()));
    fault::results_csv(rs).save(argv[6]);
    std::cout << "[results written to " << argv[6] << "]\n";
    // The run manifest rides along as <csv>.manifest.csv so downstream
    // tooling (tools/faultlab_report.py) gets timing/latency context from
    // the same invocation that produced the results and the event log.
    const std::string manifest_path = std::string(argv[6]) + ".manifest.csv";
    fault::manifest_csv(m).save(manifest_path);
    std::cout << "[manifest written to " << manifest_path << "]\n";
  }
  return 0;
}
