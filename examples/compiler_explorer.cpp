// Compiler explorer: shows the IR <-> assembly mapping the paper's Table I
// discusses, live. Give it a mini-C file, or run it bare for a built-in
// sample that exercises every Table I row (GEP folding, phi lowering, call
// overhead, branch fusion, vanishing casts).
//
//   ./build/examples/compiler_explorer [source.mc]
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/pipeline.h"
#include "ir/printer.h"
#include "x86/printer.h"

namespace {

const char* kSample = R"(
// Table I row 1: a[i] folds into an addressing mode; s[i].y needs imul.
struct Wide { long x; long y; int z; };    // 24 bytes: not a power of two
int a[64];
struct Wide s[8];

long row1_gep(int i) { return a[i] + s[i].y; }

// Row 2: the loop-carried variable becomes a phi after mem2reg.
int row2_phi(int n) {
  int acc = 1;
  int i;
  for (i = 0; i < n; i++) acc = acc * 3 + i;
  return acc;
}

// Row 3: calls get prologue/epilogue push/pop with no IR counterpart.
int row3_callee(int v) { return v * 2; }

// Row 4: the comparison fuses into cmp+jl.
int row4_branch(int x) { if (x < 10) return 1; return 0; }

// Row 5: the char->int conversions vanish at the assembly level.
int row5_casts(char c) { int w = c; long l = w; return (int)l; }

int main() {
  print_int(row1_gep(3) + row2_phi(5) + row3_callee(7) + row4_branch(2) +
            row5_casts('A'));
  return 0;
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace faultlab;

  std::string source = kSample;
  std::string name = "sample";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
    name = argv[1];
  }

  driver::CompiledProgram prog = driver::compile(source, name);

  std::cout << "==================== optimized IR ====================\n";
  std::cout << ir::to_string(prog.module());
  std::cout << "==================== x86-flavoured assembly ==========\n";
  std::cout << x86::to_string(prog.program());

  const auto r = prog.run_asm();
  std::cout << "==================== execution =======================\n";
  if (r.completed()) {
    std::cout << r.output << "(exit " << r.exit_value << ", "
              << r.dynamic_instructions << " instructions)\n";
  } else {
    std::cout << "program did not complete\n";
  }
  return 0;
}
