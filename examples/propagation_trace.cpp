// Propagation tracing: follow one bit flip through a program — the LLFI
// capability the paper's Section III describes ("enables tracing the
// propagation of the fault among instructions in the program").
//
//   ./build/examples/propagation_trace [app] [category] [samples]
//
// For each sampled injection the tracer reports how far the corruption
// spread (values, memory bytes, branches, program output) and what the
// run's final outcome was — the raw material for answering "why did this
// particular fault become an SDC while that one stayed benign?"
#include <cstdlib>
#include <iostream>

#include "apps/apps.h"
#include "driver/pipeline.h"
#include "fault/llfi.h"
#include "fault/propagation.h"
#include "support/rng.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace faultlab;

  const std::string app = argc > 1 ? argv[1] : "mcf";
  const auto category =
      ir::category_from_name(argc > 2 ? argv[2] : "all");
  const std::size_t samples =
      argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 8;
  if (!category) {
    std::cerr << "unknown category: " << argv[2] << "\n";
    return 2;
  }

  driver::CompiledProgram prog =
      driver::compile(apps::benchmark(app).source, app);
  fault::LlfiEngine llfi(prog.module());
  const std::uint64_t n = llfi.profile(*category);
  std::cout << "Tracing " << samples << " injections into '" << app
            << "' (category " << ir::category_name(*category) << ", " << n
            << " dynamic targets)\n\n";

  TextTable table({"k", "bit", "outcome", "values", "sites", "mem bytes",
                   "branches", "outputs"});
  Rng rng(7);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::uint64_t k = rng.range(1, n);
    const unsigned bit = static_cast<unsigned>(rng.below(64));
    const fault::PropagationTrace t = fault::trace_propagation(
        prog.module(), *category, k, bit, llfi.golden_output());
    table.add_row({std::to_string(k), std::to_string(bit),
                   fault::outcome_name(t.outcome),
                   std::to_string(t.contaminated_values),
                   std::to_string(t.contaminated_sites.size()),
                   std::to_string(t.contaminated_memory_bytes),
                   std::to_string(t.contaminated_branches),
                   std::to_string(t.contaminated_outputs)});
  }
  std::cout << table.to_string();
  std::cout << "\nReading: SDCs show contamination reaching 'outputs'; "
               "benign faults show small,\nself-contained footprints; "
               "crashes often show memory contamination shortly before\n"
               "the trap. Values/sites measure dynamic vs static spread.\n";
  return 0;
}
