// Resilience study: how a developer uses FaultLab the way the paper
// intends LLFI to be used — estimate an application's SDC vulnerability
// per instruction category, then sanity-check the high-level numbers
// against assembly-level injection (the paper's core question).
//
//   ./build/examples/resilience_study [app] [trials]
//   app defaults to libquantum; trials to 80.
#include <cstdlib>
#include <iostream>

#include "apps/apps.h"
#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace faultlab;

  const std::string app = argc > 1 ? argv[1] : "libquantum";
  const std::size_t trials =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 80;

  std::cout << "Resilience study of '" << app << "' (" << trials
            << " trials per category)\n\n";

  driver::CompiledProgram prog =
      driver::compile(apps::benchmark(app).source, app);
  fault::LlfiEngine llfi(prog.module());
  fault::PinfiEngine pinfi(prog.program());

  TextTable table({"Category", "LLFI SDC", "LLFI crash", "PINFI SDC",
                   "PINFI crash", "SDC CIs overlap"});
  for (ir::Category category : ir::kAllCategories) {
    fault::CampaignConfig cfg;
    cfg.app = app;
    cfg.category = category;
    cfg.trials = trials;
    const fault::CampaignResult l = fault::run_campaign(llfi, cfg);
    const fault::CampaignResult p = fault::run_campaign(pinfi, cfg);

    auto pct = [](const Proportion& pr) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f%% ±%.1f", pr.percent(),
                    pr.margin95() * 100.0);
      return std::string(buf);
    };
    const bool both = l.activated() > 0 && p.activated() > 0;
    table.add_row({ir::category_name(category),
                   both ? pct(l.sdc_rate()) : "-",
                   both ? pct(l.crash_rate()) : "-",
                   both ? pct(p.sdc_rate()) : "-",
                   both ? pct(p.crash_rate()) : "-",
                   both ? (Proportion::overlap95(l.sdc_rate(), p.sdc_rate())
                               ? "yes"
                               : "NO")
                        : "-"});
  }
  std::cout << table.to_string();

  std::cout << "\nReading: if the SDC columns agree (the paper's Figure 4 "
               "result), the cheap\nhigh-level injector is good enough for "
               "SDC studies of this program; the crash\ncolumns are "
               "expected to diverge (the paper's Table V result).\n";
  return 0;
}
