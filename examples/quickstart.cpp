// Quickstart: the 60-second tour of FaultLab's public API.
//
//   1. Compile a mini-C program through the full pipeline.
//   2. Run it on both execution engines (IR interpreter, x86 simulator).
//   3. Inject one fault with each tool (LLFI at the IR level, PINFI at the
//      assembly level) and classify the outcome.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "driver/pipeline.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"

int main() {
  using namespace faultlab;

  const char* source = R"(
    int primes[32];
    int main() {
      int count = 0;
      int n = 2;
      while (count < 32) {
        int is_prime = 1;
        int d;
        for (d = 2; d * d <= n; d++) {
          if (n % d == 0) { is_prime = 0; break; }
        }
        if (is_prime) { primes[count] = n; count++; }
        n++;
      }
      print_int(primes[31]);    // the 32nd prime: 131
      long sum = 0;
      int i;
      for (i = 0; i < 32; i++) sum += primes[i];
      print_int(sum);
      return 0;
    }
  )";

  // 1. Compile: frontend -> optimizer -> backend, one call.
  driver::CompiledProgram prog = driver::compile(source, "primes");
  std::cout << "compiled: " << prog.module().functions().size()
            << " IR functions, " << prog.program().code.size()
            << " machine instructions\n";
  std::cout << "optimizer: " << prog.opt_stats().instructions_before << " -> "
            << prog.opt_stats().instructions_after << " IR instructions, "
            << prog.opt_stats().phis_after << " phis created\n\n";

  // 2. Execute on both engines.
  const vm::RunResult ir_run = prog.run_ir();
  const x86::SimResult asm_run = prog.run_asm();
  std::cout << "golden output (both engines agree: "
            << (ir_run.output == asm_run.output ? "yes" : "NO") << ")\n"
            << ir_run.output << "\n";

  // 3. Inject one fault with each tool.
  fault::LlfiEngine llfi(prog.module());
  fault::PinfiEngine pinfi(prog.program());

  Rng rng(2014);  // the year of the paper
  const std::uint64_t llfi_targets = llfi.profile(ir::Category::All);
  const std::uint64_t pinfi_targets = pinfi.profile(ir::Category::All);
  std::cout << "dynamic injection targets ('all'): LLFI " << llfi_targets
            << ", PINFI " << pinfi_targets << "\n\n";

  Rng trial1 = rng.fork();
  const fault::TrialRecord l =
      llfi.inject(ir::Category::All, rng.range(1, llfi_targets), trial1);
  std::cout << "LLFI  trial: flipped bit " << l.bit << " of dynamic instr #"
            << l.dynamic_target << " -> " << fault::outcome_name(l.outcome)
            << "\n";

  Rng trial2 = rng.fork();
  const fault::TrialRecord p =
      pinfi.inject(ir::Category::All, rng.range(1, pinfi_targets), trial2);
  std::cout << "PINFI trial: flipped bit " << p.bit << " of dynamic instr #"
            << p.dynamic_target << " -> " << fault::outcome_name(p.outcome)
            << "\n";
  return 0;
}
