// Performance microbenchmarks (google-benchmark): compile throughput, the
// two execution engines, and injection overhead — the practical costs that
// determine how many trials a campaign can afford.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

using namespace faultlab;

const char* kKernel = R"(
  int a[256];
  int main() {
    int i; int j; long s = 0;
    for (i = 0; i < 256; i++) a[i] = i * 3;
    for (j = 0; j < 50; j++)
      for (i = 0; i < 256; i++)
        s += a[i] ^ (a[(i + j) & 255] >> 1);
    print_int(s);
    return 0;
  }
)";

void BM_CompileFullPipeline(benchmark::State& state) {
  for (auto _ : state) {
    auto prog = driver::compile(kKernel, "bench");
    benchmark::DoNotOptimize(prog.program().code.size());
  }
}
BENCHMARK(BM_CompileFullPipeline)->Unit(benchmark::kMillisecond);

void BM_CompileApps(benchmark::State& state) {
  const auto& b = apps::all_benchmarks()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto prog = driver::compile(b.source, b.name);
    benchmark::DoNotOptimize(prog.program().code.size());
  }
  state.SetLabel(b.name);
}
BENCHMARK(BM_CompileApps)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_VmExecution(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto r = prog.run_ir();
    instructions += r.dynamic_instructions;
    benchmark::DoNotOptimize(r.exit_value);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecution)->Unit(benchmark::kMillisecond);

void BM_SimExecution(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto r = prog.run_asm();
    instructions += r.dynamic_instructions;
    benchmark::DoNotOptimize(r.exit_value);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimExecution)->Unit(benchmark::kMillisecond);

// Direct trials: checkpointing disabled, every injection re-executes the
// golden prefix from main(). The baseline the checkpointed variants beat.
void BM_LlfiInjectionTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {}, {0, /*enabled=*/false});
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
}
BENCHMARK(BM_LlfiInjectionTrial)->Unit(benchmark::kMillisecond);

void BM_PinfiInjectionTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::PinfiEngine engine(prog.program(), {}, {0, /*enabled=*/false});
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
}
BENCHMARK(BM_PinfiInjectionTrial)->Unit(benchmark::kMillisecond);

// Checkpointed trials: profile_all() captures snapshots, inject() resumes
// from the nearest one before each injection point.
void BM_LlfiCheckpointedTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {},
                           {static_cast<std::uint64_t>(state.range(0)), true});
  engine.profile_all();
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
  const auto stats = engine.checkpoint_stats();
  state.counters["hit_rate"] = stats.hit_rate();
  state.counters["snapshots"] = static_cast<double>(stats.snapshots);
}
BENCHMARK(BM_LlfiCheckpointedTrial)
    ->Arg(0)         // automatic stride
    ->Arg(20'000)    // dense
    ->Arg(100'000)   // sparse
    ->Unit(benchmark::kMillisecond);

void BM_PinfiCheckpointedTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::PinfiEngine engine(prog.program(), {},
                            {static_cast<std::uint64_t>(state.range(0)), true});
  engine.profile_all();
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
  const auto stats = engine.checkpoint_stats();
  state.counters["hit_rate"] = stats.hit_rate();
  state.counters["snapshots"] = static_cast<double>(stats.snapshots);
}
BENCHMARK(BM_PinfiCheckpointedTrial)
    ->Arg(0)
    ->Arg(20'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_ProfilingOverheadVm(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {}, {0, /*enabled=*/false});
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.profile(ir::Category::All));
}
BENCHMARK(BM_ProfilingOverheadVm)->Unit(benchmark::kMillisecond);

// Snapshot capture cost: the instrumented golden run including checkpoint
// capture at the automatic stride (compare against BM_ProfilingOverheadVm
// for the marginal cost of copy-on-write snapshots).
void BM_ProfileAllWithCheckpoints(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {}, {0, /*enabled=*/true});
  for (auto _ : state) {
    auto counts = engine.profile_all();
    benchmark::DoNotOptimize(counts[ir::Category::All]);
  }
  state.counters["snapshots"] =
      static_cast<double>(engine.checkpoint_stats().snapshots);
}
BENCHMARK(BM_ProfileAllWithCheckpoints)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: run the microbenchmarks, then one small checkpointed
// LLFI+PINFI campaign over the kernel so bench_perf leaves a
// machine-readable perf record (wall time, trials/sec, snapshot hit rate)
// in BENCH_perf.json like the table/figure benches do.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace faultlab;
  std::vector<benchx::CompiledApp> apps;
  apps.push_back({"perf_kernel", driver::compile(kKernel, "perf_kernel")});
  const benchx::ExperimentRun run = benchx::run_experiment(
      apps, {ir::Category::All}, fault::default_trials());
  benchx::write_perf_entry("bench_perf", run);
  return 0;
}
