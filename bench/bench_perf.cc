// Performance microbenchmarks (google-benchmark): compile throughput, the
// two execution engines, and injection overhead — the practical costs that
// determine how many trials a campaign can afford.
#include <benchmark/benchmark.h>

#include "common.h"

namespace {

using namespace faultlab;

const char* kKernel = R"(
  int a[256];
  int main() {
    int i; int j; long s = 0;
    for (i = 0; i < 256; i++) a[i] = i * 3;
    for (j = 0; j < 50; j++)
      for (i = 0; i < 256; i++)
        s += a[i] ^ (a[(i + j) & 255] >> 1);
    print_int(s);
    return 0;
  }
)";

void BM_CompileFullPipeline(benchmark::State& state) {
  for (auto _ : state) {
    auto prog = driver::compile(kKernel, "bench");
    benchmark::DoNotOptimize(prog.program().code.size());
  }
}
BENCHMARK(BM_CompileFullPipeline)->Unit(benchmark::kMillisecond);

void BM_CompileApps(benchmark::State& state) {
  const auto& b = apps::all_benchmarks()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto prog = driver::compile(b.source, b.name);
    benchmark::DoNotOptimize(prog.program().code.size());
  }
  state.SetLabel(b.name);
}
BENCHMARK(BM_CompileApps)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_VmExecution(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto r = prog.run_ir();
    instructions += r.dynamic_instructions;
    benchmark::DoNotOptimize(r.exit_value);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecution)->Unit(benchmark::kMillisecond);

void BM_SimExecution(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto r = prog.run_asm();
    instructions += r.dynamic_instructions;
    benchmark::DoNotOptimize(r.exit_value);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimExecution)->Unit(benchmark::kMillisecond);

void BM_LlfiInjectionTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module());
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
}
BENCHMARK(BM_LlfiInjectionTrial)->Unit(benchmark::kMillisecond);

void BM_PinfiInjectionTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::PinfiEngine engine(prog.program());
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
}
BENCHMARK(BM_PinfiInjectionTrial)->Unit(benchmark::kMillisecond);

void BM_ProfilingOverheadVm(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module());
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.profile(ir::Category::All));
}
BENCHMARK(BM_ProfilingOverheadVm)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
