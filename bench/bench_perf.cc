// Performance microbenchmarks (google-benchmark): compile throughput, the
// two execution engines, and injection overhead — the practical costs that
// determine how many trials a campaign can afford.
#include <benchmark/benchmark.h>

#include <memory>
#include <optional>
#include <vector>

#include "common.h"
#include "machine/dispatch.h"
#include "machine/memory.h"
#include "obs/events.h"
#include "obs/monitor.h"
#include "obs/propagation.h"
#include "x86/trace.h"

namespace {

using namespace faultlab;

const char* kKernel = R"(
  int a[256];
  int main() {
    int i; int j; long s = 0;
    for (i = 0; i < 256; i++) a[i] = i * 3;
    for (j = 0; j < 50; j++)
      for (i = 0; i < 256; i++)
        s += a[i] ^ (a[(i + j) & 255] >> 1);
    print_int(s);
    return 0;
  }
)";

void BM_CompileFullPipeline(benchmark::State& state) {
  for (auto _ : state) {
    auto prog = driver::compile(kKernel, "bench");
    benchmark::DoNotOptimize(prog.program().code.size());
  }
}
BENCHMARK(BM_CompileFullPipeline)->Unit(benchmark::kMillisecond);

void BM_CompileApps(benchmark::State& state) {
  const auto& b = apps::all_benchmarks()[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto prog = driver::compile(b.source, b.name);
    benchmark::DoNotOptimize(prog.program().code.size());
  }
  state.SetLabel(b.name);
}
BENCHMARK(BM_CompileApps)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_VmExecution(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto r = prog.run_ir();
    instructions += r.dynamic_instructions;
    benchmark::DoNotOptimize(r.exit_value);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecution)->Unit(benchmark::kMillisecond);

void BM_SimExecution(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto r = prog.run_asm();
    instructions += r.dynamic_instructions;
    benchmark::DoNotOptimize(r.exit_value);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimExecution)->Unit(benchmark::kMillisecond);

// Dispatch A/B on the execution engines: the identical kernel under
// switch dispatch (range 0) and the pre-decoded threaded fast path
// (range 1), pinned per bench run so FAULTLAB_DISPATCH can't skew the
// pair. run_ir()/run_asm() build a fresh engine per iteration, so the
// threaded numbers include a full trace decode every time — the decode
// benches below isolate that cost, and the resident variant shows it
// amortized away.
machine::DispatchMode bench_mode(benchmark::State& state) {
  return state.range(0) == 0 ? machine::DispatchMode::Switch
                             : machine::DispatchMode::Threaded;
}

void BM_VmExecutionDispatch(benchmark::State& state) {
  const machine::DispatchMode mode = bench_mode(state);
  const machine::DispatchMode saved = machine::dispatch_mode();
  machine::set_dispatch_mode(mode);
  auto prog = driver::compile(kKernel, "bench");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto r = prog.run_ir();
    instructions += r.dynamic_instructions;
    benchmark::DoNotOptimize(r.exit_value);
  }
  machine::set_dispatch_mode(saved);
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
  state.SetLabel(machine::dispatch_mode_name(mode));
}
BENCHMARK(BM_VmExecutionDispatch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SimExecutionDispatch(benchmark::State& state) {
  const machine::DispatchMode mode = bench_mode(state);
  const machine::DispatchMode saved = machine::dispatch_mode();
  machine::set_dispatch_mode(mode);
  auto prog = driver::compile(kKernel, "bench");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto r = prog.run_asm();
    instructions += r.dynamic_instructions;
    benchmark::DoNotOptimize(r.exit_value);
  }
  machine::set_dispatch_mode(saved);
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
  state.SetLabel(machine::dispatch_mode_name(mode));
}
BENCHMARK(BM_SimExecutionDispatch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Lockstep lane scaling on the VM: N resident interpreters resumed from
// one shared snapshot and driven by a single decoded micro-op fetch loop
// (vm::Interpreter::run_lockstep). No fault hooks are armed, so no lane
// ever diverges — this is the pure fetch/dispatch amortization ceiling
// the campaign's grouped trials approach at a ~97% checkpoint hit rate.
// lane_instr/s counts every lane's instructions, so the ratio to Arg(1)
// is the speedup per decoded uop.
void BM_VmExecutionLanes(benchmark::State& state) {
  const auto lane_n = static_cast<std::size_t>(state.range(0));
  const machine::DispatchMode saved = machine::dispatch_mode();
  machine::set_dispatch_mode(machine::DispatchMode::Threaded);
  auto prog = driver::compile(kKernel, "bench");
  std::optional<vm::Snapshot> snap;
  vm::RunLimits capture_limits;
  capture_limits.snapshot_stride = 1000;
  capture_limits.snapshot_sink = [&snap](vm::Snapshot&& s) {
    if (!snap) snap = std::move(s);
  };
  vm::Interpreter(prog.module()).run("main", capture_limits);
  std::vector<std::unique_ptr<vm::Interpreter>> owned;
  std::vector<vm::Interpreter*> lanes;
  for (std::size_t i = 0; i < lane_n; ++i) {
    owned.push_back(std::make_unique<vm::Interpreter>(prog.module()));
    lanes.push_back(owned.back().get());
  }
  std::vector<vm::RunResult> results(lane_n);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    vm::Interpreter::run_lockstep(lanes.data(), lane_n, *snap, {},
                                  results.data());
    for (const vm::RunResult& r : results)
      instructions += r.dynamic_instructions - snap->executed;
    benchmark::DoNotOptimize(results[0].exit_value);
  }
  machine::set_dispatch_mode(saved);
  state.counters["lane_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecutionLanes)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The same scaling on the machine simulator (x86::Simulator::run_lockstep).
void BM_SimExecutionLanes(benchmark::State& state) {
  const auto lane_n = static_cast<std::size_t>(state.range(0));
  const machine::DispatchMode saved = machine::dispatch_mode();
  machine::set_dispatch_mode(machine::DispatchMode::Threaded);
  auto prog = driver::compile(kKernel, "bench");
  std::optional<x86::SimSnapshot> snap;
  x86::SimLimits capture_limits;
  capture_limits.snapshot_stride = 1000;
  capture_limits.snapshot_sink = [&snap](x86::SimSnapshot&& s) {
    if (!snap) snap = std::move(s);
  };
  x86::Simulator(prog.program()).run(capture_limits);
  std::vector<std::unique_ptr<x86::Simulator>> owned;
  std::vector<x86::Simulator*> lanes;
  for (std::size_t i = 0; i < lane_n; ++i) {
    owned.push_back(std::make_unique<x86::Simulator>(prog.program()));
    lanes.push_back(owned.back().get());
  }
  std::vector<x86::SimResult> results(lane_n);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    x86::Simulator::run_lockstep(lanes.data(), lane_n, *snap, {},
                                 results.data());
    for (const x86::SimResult& r : results)
      instructions += r.dynamic_instructions - snap->executed;
    benchmark::DoNotOptimize(results[0].exit_value);
  }
  machine::set_dispatch_mode(saved);
  state.counters["lane_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimExecutionLanes)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Trace-decode cost: building the simulator's pre-decoded uop array for
// the whole kernel program. Paid once per resident engine, then amortized
// over every subsequent trial.
void BM_X86TraceDecode(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  for (auto _ : state) {
    x86::XTrace trace(prog.program());
    benchmark::DoNotOptimize(trace.uops.data());
  }
  state.counters["insts"] =
      static_cast<double>(prog.program().code.size());
}
BENCHMARK(BM_X86TraceDecode);

// Decode amortization on the VM: a resident interpreter (the shape the
// scheduler's per-worker contexts have) decodes each block once, so
// steady-state runs replay cached traces. Compare against the threaded
// BM_VmExecutionDispatch above, which re-decodes per iteration.
void BM_VmExecutionResident(benchmark::State& state) {
  const machine::DispatchMode saved = machine::dispatch_mode();
  machine::set_dispatch_mode(machine::DispatchMode::Threaded);
  auto prog = driver::compile(kKernel, "bench");
  vm::Interpreter interp(prog.module());
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto r = interp.run("main");
    instructions += r.dynamic_instructions;
    benchmark::DoNotOptimize(r.exit_value);
  }
  machine::set_dispatch_mode(saved);
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecutionResident)->Unit(benchmark::kMillisecond);

// Direct trials: checkpointing disabled, every injection re-executes the
// golden prefix from main(). The baseline the checkpointed variants beat.
void BM_LlfiInjectionTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {}, {0, /*enabled=*/false});
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
}
BENCHMARK(BM_LlfiInjectionTrial)->Unit(benchmark::kMillisecond);

void BM_PinfiInjectionTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::PinfiEngine engine(prog.program(), {}, {0, /*enabled=*/false});
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
}
BENCHMARK(BM_PinfiInjectionTrial)->Unit(benchmark::kMillisecond);

// Checkpointed trials: profile_all() captures snapshots, inject() resumes
// from the nearest one before each injection point.
void BM_LlfiCheckpointedTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {},
                           {static_cast<std::uint64_t>(state.range(0)), true});
  engine.profile_all();
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
  const auto stats = engine.checkpoint_stats();
  state.counters["hit_rate"] = stats.hit_rate();
  state.counters["snapshots"] = static_cast<double>(stats.snapshots);
}
BENCHMARK(BM_LlfiCheckpointedTrial)
    ->Arg(0)         // automatic stride
    ->Arg(20'000)    // dense
    ->Arg(100'000)   // sparse
    ->Unit(benchmark::kMillisecond);

void BM_PinfiCheckpointedTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::PinfiEngine engine(prog.program(), {},
                            {static_cast<std::uint64_t>(state.range(0)), true});
  engine.profile_all();
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
  const auto stats = engine.checkpoint_stats();
  state.counters["hit_rate"] = stats.hit_rate();
  state.counters["snapshots"] = static_cast<double>(stats.snapshots);
}
BENCHMARK(BM_PinfiCheckpointedTrial)
    ->Arg(0)
    ->Arg(20'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

// Trial-reset cost at the Memory layer: an address space of range(0) pages
// with a handful of pages written between resets. Full restore rebuilds the
// whole page table per reset — O(mapped pages) — regardless of how little
// the trial touched.
void BM_MemoryRestoreFull(benchmark::State& state) {
  const std::uint64_t pages = static_cast<std::uint64_t>(state.range(0));
  machine::Memory mem;
  mem.map_range(0, pages << 12);
  for (std::uint64_t p = 0; p < pages; ++p)
    mem.write(p << 12, 8, p * 0x9E3779B97F4A7C15ull);
  const machine::Memory::Snapshot snap = mem.snapshot();
  for (auto _ : state) {
    for (std::uint64_t p = 0; p < 4; ++p) mem.write(p << 12, 8, p);
    mem.restore(snap);
  }
  state.counters["pages/reset"] = static_cast<double>(pages);
}
BENCHMARK(BM_MemoryRestoreFull)->Arg(64)->Arg(256)->Arg(1024);

// Same workload on the delta path: after the first restore arms dirty-page
// tracking, each reset rewrites only the pages the trial actually cloned —
// O(dirty), independent of the address-space size.
void BM_MemoryRestoreDelta(benchmark::State& state) {
  const std::uint64_t pages = static_cast<std::uint64_t>(state.range(0));
  machine::Memory mem;
  mem.map_range(0, pages << 12);
  for (std::uint64_t p = 0; p < pages; ++p)
    mem.write(p << 12, 8, p * 0x9E3779B97F4A7C15ull);
  const machine::Memory::Snapshot snap = mem.snapshot();
  mem.restore(snap);  // arm dirty tracking against `snap`
  std::uint64_t restored = 0;
  std::uint64_t resets = 0;
  for (auto _ : state) {
    for (std::uint64_t p = 0; p < 4; ++p) mem.write(p << 12, 8, p);
    const auto r = mem.restore_delta(snap);
    restored += r.pages;
    ++resets;
  }
  state.counters["pages/reset"] =
      resets != 0 ? static_cast<double>(restored) / static_cast<double>(resets)
                  : 0.0;
}
BENCHMARK(BM_MemoryRestoreDelta)->Arg(64)->Arg(256)->Arg(1024);

// Engine-level view of the same effect: trials resumed back-to-back from
// one window against a resident context (what the scheduler's window
// chunking produces). Every reset after the first stays on the delta path.
void BM_LlfiResidentWindowTrial(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {}, {0, /*enabled=*/true});
  engine.profile_all();
  const std::uint64_t n = engine.profile(ir::Category::All);
  const std::uint64_t k = n / 2 == 0 ? 1 : n / 2;  // one fixed window
  auto context = engine.make_context();
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject_in(context.get(), ir::Category::All, k, trial);
    benchmark::DoNotOptimize(r.outcome);
  }
  const auto stats = engine.checkpoint_stats();
  state.counters["delta_share"] =
      stats.restored_trials != 0
          ? static_cast<double>(stats.delta_restores) /
                static_cast<double>(stats.restored_trials)
          : 0.0;
  state.counters["pages/trial"] = stats.mean_restored_pages();
}
BENCHMARK(BM_LlfiResidentWindowTrial)->Unit(benchmark::kMillisecond);

// A representative crash event — the largest record shape (trap fields
// present, all strings resolved), so the append cost below is an upper
// bound on what the scheduler pays per trial.
obs::TrialEvent sample_event(std::uint32_t worker) {
  obs::TrialEvent ev;
  ev.app = "perf_kernel";
  ev.tool = "LLFI";
  ev.category = "all";
  ev.worker = worker;
  ev.trial = 1;
  ev.k = 123;
  ev.bit = 17;
  ev.static_site = 42;
  ev.opcode = "getelementptr";
  ev.function = "main";
  ev.injected = true;
  ev.activated = true;
  ev.outcome = "crash";
  ev.trap = "unmapped-access";
  ev.trap_pc = 99;
  ev.inject_instruction = 1000;
  ev.instructions_total = 5000;
  ev.instructions_after_injection = 4000;
  ev.checkpoint_hit = true;
  ev.latency_ms = 1.5;
  return ev;
}

// Sharded event-writer append: serialize into the calling thread's shard,
// amortized spill past 64KB. The multi-threaded variants show the shards
// keeping writers off each other's locks; the sink is /dev/null so the
// bench measures the writer, not the disk.
void BM_EventLogAppend(benchmark::State& state) {
  static obs::EventLog* const log = [] {
    auto* l = new faultlab::obs::EventLog();
    l->open("/dev/null");
    return l;
  }();
  obs::TrialEvent ev =
      sample_event(static_cast<std::uint32_t>(state.thread_index()));
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ev.seq = seq++;
    log->append(ev);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventLogAppend)->Threads(1)->Threads(4)->Threads(8);

// The disabled path the scheduler takes when FAULTLAB_EVENTS is unset:
// must stay a single relaxed load (see the no-allocation test in
// tests/test_obs.cc for the complementary guarantee).
void BM_EventLogAppendDisabled(benchmark::State& state) {
  obs::EventLog log;  // never opened
  const obs::TrialEvent ev = sample_event(0);
  for (auto _ : state) log.append(ev);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventLogAppendDisabled);

// Per-trial cost of the campaign monitor's hot path (begin_trial +
// record): one clock read plus a handful of relaxed atomics, safe to pay
// on every trial of a live-monitored run.
void BM_MonitorRecord(benchmark::State& state) {
  static obs::CampaignMonitor* const monitor = [] {
    auto* m = new obs::CampaignMonitor(obs::MonitorOptions{}, 8);
    m->add_cell("bench", "llfi", "all", "transient", 1u << 30);
    return m;
  }();
  const auto worker = static_cast<std::size_t>(state.thread_index());
  for (auto _ : state) {
    monitor->begin_trial(worker, 0);
    monitor->record(worker, 0, obs::MonitorOutcome::Benign, 1.5);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MonitorRecord)->Threads(1)->Threads(4)->Threads(8);

// The disabled path the scheduler takes when no monitor is active: one
// null-pointer branch per trial, nothing else (the complement of
// BM_MonitorRecord — compare the pair to see what "off" costs).
void BM_MonitorRecordDisabled(benchmark::State& state) {
  obs::CampaignMonitor* monitor = nullptr;
  benchmark::DoNotOptimize(monitor);
  for (auto _ : state) {
    if (monitor) monitor->record(0, 0, obs::MonitorOutcome::Benign, 1.5);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MonitorRecordDisabled);

// Propagation-tracing overhead on full checkpointed injection trials:
// Arg(0) is the normal untraced path, Arg(1) arms the tracer (the
// FAULTLAB_PROP path). The traced leg pays the hooked slow path for the
// entire post-injection suffix plus taint bookkeeping; the untraced leg
// must measure identical to the same bench before this feature existed —
// tracer off is one latched-bool branch at engine construction.
void BM_VmExecutionProp(benchmark::State& state) {
  obs::set_prop_enabled(state.range(0) != 0);
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {}, {0, /*enabled=*/true});
  engine.profile_all();
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
  obs::set_prop_enabled(false);
  state.SetLabel(state.range(0) != 0 ? "prop_on" : "prop_off");
}
BENCHMARK(BM_VmExecutionProp)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SimExecutionProp(benchmark::State& state) {
  obs::set_prop_enabled(state.range(0) != 0);
  auto prog = driver::compile(kKernel, "bench");
  fault::PinfiEngine engine(prog.program(), {}, {0, /*enabled=*/true});
  engine.profile_all();
  const std::uint64_t n = engine.profile(ir::Category::All);
  Rng rng(1);
  for (auto _ : state) {
    Rng trial = rng.fork();
    auto r = engine.inject(ir::Category::All, rng.range(1, n), trial);
    benchmark::DoNotOptimize(r.outcome);
  }
  obs::set_prop_enabled(false);
  state.SetLabel(state.range(0) != 0 ? "prop_on" : "prop_off");
}
BENCHMARK(BM_SimExecutionProp)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ProfilingOverheadVm(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {}, {0, /*enabled=*/false});
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.profile(ir::Category::All));
}
BENCHMARK(BM_ProfilingOverheadVm)->Unit(benchmark::kMillisecond);

// Snapshot capture cost: the instrumented golden run including checkpoint
// capture at the automatic stride (compare against BM_ProfilingOverheadVm
// for the marginal cost of copy-on-write snapshots).
void BM_ProfileAllWithCheckpoints(benchmark::State& state) {
  auto prog = driver::compile(kKernel, "bench");
  fault::LlfiEngine engine(prog.module(), {}, {0, /*enabled=*/true});
  for (auto _ : state) {
    auto counts = engine.profile_all();
    benchmark::DoNotOptimize(counts[ir::Category::All]);
  }
  state.counters["snapshots"] =
      static_cast<double>(engine.checkpoint_stats().snapshots);
}
BENCHMARK(BM_ProfileAllWithCheckpoints)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: run the microbenchmarks, then one small checkpointed
// LLFI+PINFI campaign over the kernel so bench_perf leaves a
// machine-readable perf record (wall time, trials/sec, snapshot hit rate)
// in BENCH_perf.json like the table/figure benches do.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace faultlab;
  std::vector<benchx::CompiledApp> apps;
  apps.push_back({"perf_kernel", driver::compile(kKernel, "perf_kernel")});
  const benchx::ExperimentRun run = benchx::run_experiment(
      apps, {ir::Category::All}, fault::default_trials());
  benchx::write_perf_entry("bench_perf", run);

  // Event-log overhead at campaign granularity: the identical experiment
  // (same seed, same draws) with the flight recorder off and then on,
  // recorded as a BENCH_perf pair. The first run above had the recorder in
  // whatever state FAULTLAB_EVENTS left it; this pair pins both states.
  obs::EventLog::global().close();
  const benchx::ExperimentRun off = benchx::run_experiment(
      apps, {ir::Category::All}, fault::default_trials());
  benchx::write_perf_entry("bench_perf_events_off", off);
  obs::EventLog::global().open("bench_perf_events.jsonl");
  const benchx::ExperimentRun on = benchx::run_experiment(
      apps, {ir::Category::All}, fault::default_trials());
  benchx::write_perf_entry("bench_perf_events_on", on);
  obs::EventLog::global().close();

  // Propagation-tracing overhead at campaign granularity: the same
  // experiment with the tracer armed. write_perf_entry suffixes the key
  // ("bench_perf_prop"), so the untraced "bench_perf" entry above is the
  // paired baseline.
  obs::set_prop_enabled(true);
  const benchx::ExperimentRun prop = benchx::run_experiment(
      apps, {ir::Category::All}, fault::default_trials());
  benchx::write_perf_entry("bench_perf", prop);
  obs::set_prop_enabled(false);
  return 0;
}
