// Table IV: dynamic (runtime) instruction counts per category, LLFI vs
// PINFI. Pure profiling — no fault injections — so this is fast and exact.
#include <iostream>

#include "common.h"

int main() {
  using namespace faultlab;
  benchx::print_banner("Table IV: runtime instructions per category", 0);

  auto apps = benchx::compile_all_apps();
  fault::ResultSet rs;
  for (auto& app : apps) {
    fault::LlfiEngine llfi(app.program.module());
    fault::PinfiEngine pinfi(app.program.program());
    // One instrumented run per engine records every category's count.
    const fault::CategoryCounts lcounts = llfi.profile_all();
    const fault::CategoryCounts pcounts = pinfi.profile_all();
    for (ir::Category c : ir::kAllCategories) {
      fault::CampaignResult l;
      l.app = app.name;
      l.tool = "LLFI";
      l.category = c;
      l.profiled_count = lcounts[c];
      rs.add(std::move(l));
      fault::CampaignResult p;
      p.app = app.name;
      p.tool = "PINFI";
      p.category = c;
      p.profiled_count = pcounts[c];
      rs.add(std::move(p));
    }
  }
  std::cout << fault::render_table4(rs);

  // The paper's three observations about this table, checked live:
  std::cout << "\nPaper-shape checks:\n";
  int all_more = 0, cmp_close = 0;
  const int napps = static_cast<int>(apps.size());
  for (auto& app : apps) {
    const auto* la = rs.find(app.name, "LLFI", ir::Category::All);
    const auto* pa = rs.find(app.name, "PINFI", ir::Category::All);
    if (la->profiled_count > pa->profiled_count) ++all_more;
    const auto* lc = rs.find(app.name, "LLFI", ir::Category::Cmp);
    const auto* pc = rs.find(app.name, "PINFI", ir::Category::Cmp);
    const double ratio = pc->profiled_count == 0
                             ? 0.0
                             : static_cast<double>(lc->profiled_count) /
                                   static_cast<double>(pc->profiled_count);
    if (ratio >= 0.6 && ratio <= 1.6) ++cmp_close;
  }
  std::cout << "  LLFI counts more 'all' instructions than PINFI: " << all_more
            << "/" << napps << " apps"
            << (all_more >= napps - 1 ? " (matches paper; raytrace can "
                                        "invert: see EXPERIMENTS.md)"
                                      : "")
            << "\n";
  std::cout << "  'cmp' counts similar between tools: " << cmp_close << "/"
            << napps << " apps (paper: all)\n";
  std::cout << "  'cast' counts negligible at assembly level: see Cast "
               "column above (matches paper row 3)\n";

  benchx::save_results(rs, "table4_counts.csv");
  return 0;
}
