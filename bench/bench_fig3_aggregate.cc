// Figure 3: aggregated fault-injection outcomes (crash / SDC / benign) for
// both tools, 'all' instruction category, across the six benchmarks.
//
// The experiment runs twice in this process — once per dispatch mode — so
// BENCH_perf.json always holds an interleaved threaded/switch A/B pair
// (`fig3_aggregate` vs `fig3_aggregate_switchdispatch`) measured on the
// same machine state, and the binary itself re-checks that the two modes
// produce byte-identical results.
#include <cstdlib>
#include <iostream>

#include "common.h"
#include "machine/dispatch.h"

int main() {
  using namespace faultlab;
  const std::size_t trials = fault::default_trials();
  benchx::print_banner("Figure 3: aggregated fault injection results", trials);

  auto apps = benchx::compile_all_apps();
  const machine::DispatchMode env_mode = machine::dispatch_mode();
  machine::set_dispatch_mode(machine::DispatchMode::Threaded);
  benchx::ExperimentRun run =
      benchx::run_experiment(apps, {ir::Category::All}, trials);
  const fault::ResultSet& rs = run.results;

  std::cout << "\n" << fault::render_figure3(rs);

  // Paper's reading of this figure: crash ~30%, SDC ~10% on average, hangs
  // negligible, and LLFI/PINFI SDC percentages close.
  double crash_avg = 0, sdc_avg = 0, hang_total = 0;
  int cells = 0;
  for (const auto& r : rs.all()) {
    if (r.activated() == 0) continue;
    crash_avg += r.crash_rate().percent();
    sdc_avg += r.sdc_rate().percent();
    hang_total += r.hang_rate().percent();
    ++cells;
  }
  if (cells > 0) {
    std::cout << "\nAverages over all cells: crash " << crash_avg / cells
              << "%, SDC " << sdc_avg / cells << "%, hang "
              << hang_total / cells << "% (paper: ~30% / ~10% / ~0%)\n";
  }
  benchx::save_results(run, "fig3_aggregate.csv");

  // The switch-dispatch leg of the A/B pair: identical grid, seed, and
  // draws; write_perf_entry keys it `fig3_aggregate_switchdispatch`.
  machine::set_dispatch_mode(machine::DispatchMode::Switch);
  const benchx::ExperimentRun ab =
      benchx::run_experiment(apps, {ir::Category::All}, trials);
  machine::set_dispatch_mode(env_mode);
  benchx::write_perf_entry("fig3_aggregate", ab);
  const bool identical = fault::results_csv(ab.results).to_string() ==
                         fault::results_csv(run.results).to_string();
  std::cout << "[dispatch A/B: threaded " << run.manifest.wall_seconds
            << "s vs switch " << ab.manifest.wall_seconds << "s, results "
            << (identical ? "byte-identical" : "DIVERGED") << "]\n";
  if (!identical) return EXIT_FAILURE;

  // The lockstep-lane leg: the same grid with lane grouping forced off
  // (FAULTLAB_LANES=1 equivalent). write_perf_entry keys it
  // `fig3_aggregate_lanes1`; the binary fails outright if grouping moved
  // a single byte of the results.
  const std::size_t env_lanes = machine::lane_count();
  machine::set_lane_count(1);
  const benchx::ExperimentRun solo =
      benchx::run_experiment(apps, {ir::Category::All}, trials);
  machine::set_lane_count(env_lanes);
  benchx::write_perf_entry("fig3_aggregate", solo);
  const bool lanes_identical =
      fault::results_csv(solo.results).to_string() ==
      fault::results_csv(run.results).to_string();
  std::cout << "[lanes A/B: lanes=" << run.manifest.lanes << " "
            << run.manifest.wall_seconds << "s (mean pack occupancy "
            << run.manifest.mean_pack_lanes() << ", "
            << run.manifest.pack_divergences << " divergences) vs lanes=1 "
            << solo.manifest.wall_seconds << "s, results "
            << (lanes_identical ? "byte-identical" : "DIVERGED") << "]\n";
  if (!lanes_identical) return EXIT_FAILURE;
  return 0;
}
