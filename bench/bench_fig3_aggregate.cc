// Figure 3: aggregated fault-injection outcomes (crash / SDC / benign) for
// both tools, 'all' instruction category, across the six benchmarks.
#include <iostream>

#include "common.h"

int main() {
  using namespace faultlab;
  const std::size_t trials = fault::default_trials();
  benchx::print_banner("Figure 3: aggregated fault injection results", trials);

  auto apps = benchx::compile_all_apps();
  benchx::ExperimentRun run =
      benchx::run_experiment(apps, {ir::Category::All}, trials);
  const fault::ResultSet& rs = run.results;

  std::cout << "\n" << fault::render_figure3(rs);

  // Paper's reading of this figure: crash ~30%, SDC ~10% on average, hangs
  // negligible, and LLFI/PINFI SDC percentages close.
  double crash_avg = 0, sdc_avg = 0, hang_total = 0;
  int cells = 0;
  for (const auto& r : rs.all()) {
    if (r.activated() == 0) continue;
    crash_avg += r.crash_rate().percent();
    sdc_avg += r.sdc_rate().percent();
    hang_total += r.hang_rate().percent();
    ++cells;
  }
  if (cells > 0) {
    std::cout << "\nAverages over all cells: crash " << crash_avg / cells
              << "%, SDC " << sdc_avg / cells << "%, hang "
              << hang_total / cells << "% (paper: ~30% / ~10% / ~0%)\n";
  }
  benchx::save_results(run, "fig3_aggregate.csv");
  return 0;
}
