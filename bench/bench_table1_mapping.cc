// Table I: quantifies the IR <-> assembly mapping differences the paper
// lists qualitatively, by counting both sides on real executions:
//   row 1  getelementptr vs address-computation instructions (lea/imul)
//   row 2  phi nodes vs phi-lowering copies and register spills
//   row 3  calls vs caller/callee-save push/pop traffic (no IR counterpart)
//   row 4  conditional branches vs jcc
//   row 5  IR conversion casts vs assembly convert instructions
#include <iostream>
#include <map>

#include "backend/isel.h"
#include "ir/dominance.h"
#include "frontend/codegen.h"
#include "backend/phi_elim.h"
#include "backend/regalloc.h"
#include "common.h"
#include "opt/pass.h"
#include "support/table.h"

namespace {

using namespace faultlab;

struct IrHistogram final : vm::ExecHook {
  std::map<ir::Opcode, std::uint64_t> counts;
  std::uint64_t cond_branches = 0;
  std::uint64_t conversion_casts = 0;
  void on_instruction(const ir::Instruction& instr) override {
    ++counts[instr.opcode()];
    if (instr.opcode() == ir::Opcode::Br &&
        static_cast<const ir::BranchInst&>(instr).is_conditional())
      ++cond_branches;
    if (ir::is_conversion_cast(instr.opcode())) ++conversion_casts;
  }
  std::uint64_t of(ir::Opcode op) const {
    auto it = counts.find(op);
    return it == counts.end() ? 0 : it->second;
  }
};

struct AsmHistogram final : x86::SimHook {
  std::map<x86::Op, std::uint64_t> counts;
  void on_before(std::size_t, const x86::Inst& inst) override {
    ++counts[inst.op];
  }
  std::uint64_t of(x86::Op op) const {
    auto it = counts.find(op);
    return it == counts.end() ? 0 : it->second;
  }
};

/// Re-runs the backend to collect per-app register-allocation statistics.
backend::RegAllocStats backend_stats(const std::string& source,
                                     const std::string& name) {
  auto module = mc::compile_to_ir(source, name);
  opt::run_standard_pipeline(*module);
  machine::GlobalLayout layout(*module);
  for (const auto& f : module->functions()) {
    if (f->is_builtin()) continue;
    backend::split_critical_edges(*f);
    // Instruction selection needs defs before uses in list order.
    ir::DominatorTree dom(*f);
    f->reorder_blocks(dom.reverse_postorder());
  }
  backend::LoweringContext ctx =
      backend::LoweringContext::build(*module, layout);
  backend::RegAllocStats total{};
  for (const auto& f : module->functions()) {
    if (f->is_builtin()) continue;
    backend::IselResult sel = backend::select_instructions(*f, ctx);
    backend::eliminate_phis(sel.mf, sel.phi_copies);
    const backend::RegAllocStats s = backend::allocate_registers(sel.mf);
    total.vregs += s.vregs;
    total.spilled += s.spilled;
    total.spill_loads += s.spill_loads;
    total.spill_stores += s.spill_stores;
  }
  return total;
}

}  // namespace

int main() {
  benchx::print_banner(
      "Table I: IR<->assembly mapping differences, quantified", 0);

  auto apps = benchx::compile_all_apps();

  TextTable gep({"Benchmark", "gep (dyn IR)", "lea (dyn asm)",
                 "imul (dyn asm)", "folded into addressing"});
  TextTable phi({"Benchmark", "phi (dyn IR)", "static spills", "spill ld+st",
                 "vregs"});
  TextTable call({"Benchmark", "call (dyn IR)", "push (dyn asm)",
                  "pop (dyn asm)", "asm-only save traffic"});
  TextTable branch({"Benchmark", "cond br (dyn IR)", "jcc (dyn asm)"});
  TextTable cast({"Benchmark", "conv casts (dyn IR)", "cvt* (dyn asm)",
                  "ratio"});

  for (auto& app : apps) {
    IrHistogram irh;
    AsmHistogram ah;
    {
      vm::Interpreter vmr(app.program.module(), &irh);
      if (!vmr.run().completed()) return 1;
    }
    {
      x86::Simulator sim(app.program.program(), &ah);
      if (!sim.run().completed()) return 1;
    }
    const auto stats =
        backend_stats(apps::benchmark(app.name).source, app.name);

    const std::uint64_t geps = irh.of(ir::Opcode::Gep);
    const std::uint64_t leas = ah.of(x86::Op::Lea);
    char foldbuf[32];
    std::snprintf(foldbuf, sizeof foldbuf, "%.0f%%",
                  geps == 0 ? 0.0
                            : 100.0 * (1.0 - std::min<double>(1.0,
                                  static_cast<double>(leas) /
                                      static_cast<double>(geps))));
    gep.add_row({app.name, format_count(geps), format_count(leas),
                 format_count(ah.of(x86::Op::Imul)), foldbuf});

    phi.add_row({app.name, format_count(irh.of(ir::Opcode::Phi)),
                 std::to_string(stats.spilled),
                 std::to_string(stats.spill_loads + stats.spill_stores),
                 std::to_string(stats.vregs)});

    const std::uint64_t pushes = ah.of(x86::Op::Push);
    const std::uint64_t pops = ah.of(x86::Op::Pop);
    call.add_row({app.name, format_count(irh.of(ir::Opcode::Call)),
                  format_count(pushes), format_count(pops),
                  format_count(pushes + pops)});

    branch.add_row({app.name, format_count(irh.cond_branches),
                    format_count(ah.of(x86::Op::Jcc))});

    const std::uint64_t cvts =
        ah.of(x86::Op::Cvtsi2sd) + ah.of(x86::Op::Cvttsd2si);
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.3f",
                  irh.conversion_casts == 0
                      ? 0.0
                      : static_cast<double>(cvts) /
                            static_cast<double>(irh.conversion_casts));
    cast.add_row({app.name, format_count(irh.conversion_casts),
                  format_count(cvts), ratio});
  }

  std::cout << "\nRow 1 - GetElementPtr: most GEPs fold into [base+index*"
               "scale+disp] addressing\nand emit no instruction; the rest "
               "become lea/imul (arithmetic to PINFI):\n"
            << gep.to_string();
  std::cout << "\nRow 2 - PHI nodes: lowered to register copies; under "
               "pressure they spill\n(register-to-stack traffic with no IR "
               "counterpart):\n"
            << phi.to_string();
  std::cout << "\nRow 3 - Function calls: prologue/epilogue push/pop has no "
               "IR counterpart,\nso LLFI can never inject into it:\n"
            << call.to_string();
  std::cout << "\nRow 4 - Conditional branches map 1:1 onto jcc:\n"
            << branch.to_string();
  std::cout << "\nRow 5 - Type casts: far fewer convert instructions at the "
               "assembly level\n(zext/sext/trunc vanish into register "
               "widths):\n"
            << cast.to_string();
  return 0;
}
