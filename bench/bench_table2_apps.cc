// Table II: characteristics of the benchmark programs — plus the category
// definitions of Table III, since both are part of the experimental setup.
#include <iostream>
#include <sstream>

#include "common.h"
#include "support/table.h"

namespace {

std::size_t line_count(const std::string& text) {
  std::size_t lines = 0;
  for (char c : text)
    if (c == '\n') ++lines;
  return lines;
}

}  // namespace

int main() {
  using namespace faultlab;
  benchx::print_banner("Table II: characteristics of benchmark programs", 0);

  TextTable table({"Benchmark", "Suite", "Lines", "Input",
                   "dyn IR instrs", "dyn asm instrs"});
  auto apps = benchx::compile_all_apps();
  for (auto& app : apps) {
    const auto& meta = apps::benchmark(app.name);
    const auto r_ir = app.program.run_ir();
    const auto r_asm = app.program.run_asm();
    table.add_row({app.name, meta.suite, std::to_string(line_count(meta.source)),
                   meta.input, format_count(r_ir.dynamic_instructions),
                   format_count(r_asm.dynamic_instructions)});
  }
  std::cout << table.to_string() << "\n";

  std::cout << "Descriptions:\n";
  for (const auto& b : apps::all_benchmarks())
    std::cout << "  " << b.name << ": " << b.description << "\n";

  std::cout << "\nTable III: fault-injection instruction categories\n";
  TextTable cats({"Category", "LLFI selection (IR)", "PINFI selection (asm)"});
  cats.add_row({"arithmetic", "integer/fp arithmetic & logic ops",
                "ALU + SSE arithmetic incl. lea/address computation"});
  cats.add_row({"cast", "conversion casts (trunc/zext/sext/fptosi/sitofp)",
                "'convert' category: cvtsi2sd / cvttsd2si"});
  cats.add_row({"cmp", "icmp / fcmp instructions",
                "cmp/test/ucomisd whose next instruction is a cond. jump"});
  cats.add_row({"load", "load instructions",
                "mov with memory source and register destination"});
  cats.add_row({"all", "all instructions with a destination register",
                "all instructions with a destination register"});
  std::cout << cats.to_string();
  return 0;
}
