// Shared helpers for the experiment harnesses (one binary per paper
// table/figure). Each binary is self-contained: it compiles the six
// benchmarks, runs the campaigns it needs, prints the paper-shaped table,
// and drops a CSV (plus a run manifest) next to the binary for downstream
// tooling.
#pragma once

#include <string>
#include <vector>

#include "apps/apps.h"
#include "driver/pipeline.h"
#include "fault/campaign.h"
#include "fault/llfi.h"
#include "fault/pinfi.h"
#include "fault/report.h"
#include "fault/scheduler.h"

namespace faultlab::benchx {

struct CompiledApp {
  std::string name;
  driver::CompiledProgram program;
};

/// Compiles all six benchmarks through the full pipeline.
std::vector<CompiledApp> compile_all_apps();

/// Results plus the scheduler's run manifest (timings, counters, config).
struct ExperimentRun {
  fault::ResultSet results;
  fault::RunManifest manifest;
  /// Checkpoint-layer counters summed over every engine in the run.
  fault::CheckpointStats checkpoints;
  /// Restore/execute/classify wall time summed over every engine's trials.
  fault::PhaseStats phases;
  std::uint64_t seed = 0;
};

/// Scheduler options shared by every bench binary: FAULTLAB_THREADS pins
/// the worker count, and a per-campaign completion line goes to stderr
/// unless FAULTLAB_PROGRESS=1 (the scheduler's own single-line reporter)
/// is on, which would be clobbered by interleaved output.
fault::SchedulerOptions default_scheduler_options(
    const fault::FaultModel& model = {});

/// Runs LLFI+PINFI campaigns for the given categories over all apps on one
/// shared CampaignScheduler: each engine is profiled once for all
/// categories, and every trial of the grid goes through one worker pool.
/// `fault_model` selects the hardware fault model both engines inject
/// (defaults to FAULTLAB_FAULT_MODEL, i.e. the transient baseline).
ExperimentRun run_experiment(const std::vector<CompiledApp>& apps,
                             const std::vector<ir::Category>& categories,
                             std::size_t trials,
                             const fault::FaultModel& model = {},
                             const fault::Model& fault_model =
                                 fault::Model::from_env(),
                             std::uint64_t seed = 0xDA7A5EED);

/// Prints a standard experiment banner (paper reference + trial count).
void print_banner(const std::string& what, std::size_t trials);

/// Saves a CSV beside the current working directory, reporting the path.
void save_results(const fault::ResultSet& rs, const std::string& filename);

/// Saves the results CSV plus the run manifest (<stem>.manifest.csv), and
/// records the run's perf counters in BENCH_perf.json (see write_perf_entry).
void save_results(const ExperimentRun& run, const std::string& filename);

/// Upserts one experiment's entry in ./BENCH_perf.json — a top-level JSON
/// object keyed by experiment name, one entry per line, so successive bench
/// binaries sharing a working directory accumulate into one manifest.
/// Records wall time, trials/sec, thread count, seed, the checkpoint
/// layer's stride/snapshot/hit-rate counters, dispatch provenance (mode +
/// trace-cache counters), lockstep-lane provenance (lane cap + pack
/// occupancy/divergence counters), and the restore/execute/classify phase
/// split. Runs under a non-default dispatch mode are keyed
/// `<experiment>_<mode>dispatch`, and lanes=1 runs `<experiment>_lanes1`,
/// so A/B pairs coexist.
void write_perf_entry(const std::string& experiment, const ExperimentRun& run);

}  // namespace faultlab::benchx
