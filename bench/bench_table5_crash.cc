// Table V: crash percentages per category — the paper's negative result:
// unlike SDC rates, crash rates diverge substantially between LLFI and
// PINFI (up to ~40 points), except for the 'cmp' category.
#include <cstdio>
#include <iostream>
#include <utility>

#include "common.h"
#include "fault/attribution.h"
#include "fault/compare.h"
#include "obs/propagation.h"

int main() {
  using namespace faultlab;
  const std::size_t trials = fault::default_trials();
  benchx::print_banner("Table V: crash percentages for LLFI and PINFI",
                       trials);

  // Propagation tracing on for the whole bench: results are byte-identical
  // either way (the PropEquiv fixtures pin this), and the traced trials
  // feed table5_propagation.csv — the why behind the crash-gap table.
  obs::set_prop_enabled(true);

  auto apps = benchx::compile_all_apps();
  const std::vector<ir::Category> cats(std::begin(ir::kAllCategories),
                                       std::end(ir::kAllCategories));
  benchx::ExperimentRun run = benchx::run_experiment(apps, cats, trials);
  const fault::ResultSet& rs = run.results;

  std::cout << "\n" << fault::render_table5(rs);

  const fault::HeadlineFindings h = fault::summarize(rs);
  std::cout << "\n" << fault::render_summary(h);
  std::cout << "(paper: max crash differences of 17-40 points in "
               "all/arithmetic/cast/load; cmp crash rates nearly equal)\n";

  std::cout << "\n" << fault::render_attribution(rs);

  benchx::save_results(run, "table5_crash.csv");
  fault::attribution_csv(rs).save("table5_attribution.csv");
  std::cout << "[attribution written to table5_attribution.csv]\n";

  // Cross-model sweep: re-run the 'all' grid under each builtin hardware
  // fault model (transient baseline, stuck-at-1, intermittent burst,
  // 2-bit mask) and attribute crash divergence per model, so the CSV shows
  // which mapping classes diverge under which model.
  std::cout << "\nCross-model crash sweep ('all' category, builtin fault "
               "models)\n";
  std::vector<std::pair<std::string, fault::ResultSet>> per_model;
  for (const fault::Model& m : fault::Model::builtin_suite()) {
    benchx::ExperimentRun mrun = benchx::run_experiment(
        apps, {ir::Category::All}, trials, {}, m);
    double crash_sum[2] = {0, 0};
    int counts[2] = {0, 0};
    for (const fault::CampaignResult& r : mrun.results.all()) {
      if (r.activated() == 0) continue;
      const int t = r.tool == "LLFI" ? 0 : 1;
      crash_sum[t] += r.crash_rate().percent();
      ++counts[t];
    }
    std::printf("  %-20s crash LLFI %5.1f%%  PINFI %5.1f%%\n",
                m.name().c_str(),
                counts[0] != 0 ? crash_sum[0] / counts[0] : 0.0,
                counts[1] != 0 ? crash_sum[1] / counts[1] : 0.0);
    per_model.emplace_back(m.name(), std::move(mrun.results));
  }
  fault::model_attribution_csv(per_model).save("table5_models.csv");
  std::cout << "[per-model attribution written to table5_models.csv]\n";

  // Propagation roll-up: the transient full grid (all apps × categories,
  // both tools) plus every non-baseline model's 'all' sweep. One row per
  // (model, app, category, tool, mapping class) of taint/divergence stats.
  std::vector<std::pair<std::string, fault::ResultSet>> prop_sets;
  prop_sets.emplace_back("transient", rs);
  for (const auto& [model, mrs] : per_model)
    if (model != "transient") prop_sets.emplace_back(model, mrs);
  fault::propagation_attribution_csv(prop_sets).save("table5_propagation.csv");
  std::cout << "[propagation roll-up written to table5_propagation.csv]\n";
  return 0;
}
