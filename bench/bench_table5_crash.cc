// Table V: crash percentages per category — the paper's negative result:
// unlike SDC rates, crash rates diverge substantially between LLFI and
// PINFI (up to ~40 points), except for the 'cmp' category.
#include <iostream>

#include "common.h"
#include "fault/attribution.h"
#include "fault/compare.h"

int main() {
  using namespace faultlab;
  const std::size_t trials = fault::default_trials();
  benchx::print_banner("Table V: crash percentages for LLFI and PINFI",
                       trials);

  auto apps = benchx::compile_all_apps();
  const std::vector<ir::Category> cats(std::begin(ir::kAllCategories),
                                       std::end(ir::kAllCategories));
  benchx::ExperimentRun run = benchx::run_experiment(apps, cats, trials);
  const fault::ResultSet& rs = run.results;

  std::cout << "\n" << fault::render_table5(rs);

  const fault::HeadlineFindings h = fault::summarize(rs);
  std::cout << "\n" << fault::render_summary(h);
  std::cout << "(paper: max crash differences of 17-40 points in "
               "all/arithmetic/cast/load; cmp crash rates nearly equal)\n";

  std::cout << "\n" << fault::render_attribution(rs);

  benchx::save_results(run, "table5_crash.csv");
  fault::attribution_csv(rs).save("table5_attribution.csv");
  std::cout << "[attribution written to table5_attribution.csv]\n";
  return 0;
}
