// Ablations of the paper's design choices (Sections IV and VII):
//   1. PINFI flag heuristic off  -> cmp-category activation collapses
//   2. PINFI XMM pruning off     -> double-arithmetic activation drops
//   3. LLFI full-64-bit flips    -> inflated corruption on narrow types
//   4. LLFI GEP-as-arithmetic    -> the paper's proposed fix for the
//                                   'arithmetic' crash divergence
// Run on two apps chosen for contrast: mcf (pointer/int heavy) and
// raytrace (double heavy).
#include <iostream>

#include "common.h"
#include "support/table.h"

namespace {

using namespace faultlab;

struct CellStats {
  double activation = 0.0;
  double crash = 0.0;
  double sdc = 0.0;
};

CellStats run_cell(fault::InjectorEngine& engine, const std::string& app,
                   ir::Category cat, std::size_t trials) {
  fault::CampaignConfig cfg;
  cfg.app = app;
  cfg.category = cat;
  cfg.trials = trials;
  const fault::CampaignResult r = fault::run_campaign(engine, cfg);
  CellStats s;
  if (!r.trials.empty())
    s.activation = 100.0 * static_cast<double>(r.activated()) /
                   static_cast<double>(r.trials.size());
  s.crash = r.crash_rate().percent();
  s.sdc = r.sdc_rate().percent();
  return s;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v);
  return buf;
}

}  // namespace

int main() {
  const std::size_t trials = fault::default_trials();
  benchx::print_banner("Ablations: PINFI heuristics and LLFI variants",
                       trials);

  const char* app_names[] = {"mcf", "raytrace"};
  std::vector<benchx::CompiledApp> apps;
  for (const char* n : app_names)
    apps.push_back({n, driver::compile(apps::benchmark(n).source, n)});

  // 1 + 2: PINFI heuristics (activation rates are what they exist for).
  TextTable pinfi_table({"App", "Variant", "cmp activation",
                         "arith activation", "arith SDC"});
  for (auto& app : apps) {
    for (int variant = 0; variant < 3; ++variant) {
      fault::FaultModel model;
      std::string label = "both heuristics (paper)";
      if (variant == 1) {
        model.pinfi_flag_heuristic = false;
        label = "flag heuristic OFF";
      } else if (variant == 2) {
        model.pinfi_xmm_prune = false;
        label = "xmm pruning OFF";
      }
      fault::PinfiEngine engine(app.program.program(), model);
      const CellStats cmp = run_cell(engine, app.name, ir::Category::Cmp, trials);
      const CellStats arith =
          run_cell(engine, app.name, ir::Category::Arithmetic, trials);
      pinfi_table.add_row({app.name, label, fmt(cmp.activation),
                           fmt(arith.activation), fmt(arith.sdc)});
    }
  }
  std::cout << "\nPINFI heuristics (Figure 2): both exist to raise fault "
               "activation --\n"
            << pinfi_table.to_string();

  // 3: LLFI bit-width policy.
  TextTable llfi_table({"App", "Variant", "all crash", "all SDC",
                        "all activation"});
  for (auto& app : apps) {
    for (int variant = 0; variant < 2; ++variant) {
      fault::FaultModel model;
      std::string label = "type-width flips (paper)";
      if (variant == 1) {
        model.llfi_type_width = false;
        label = "full 64-bit flips";
      }
      fault::LlfiEngine engine(app.program.module(), model);
      const CellStats all = run_cell(engine, app.name, ir::Category::All, trials);
      llfi_table.add_row(
          {app.name, label, fmt(all.crash), fmt(all.sdc), fmt(all.activation)});
    }
  }
  std::cout << "\nLLFI flip-width policy --\n" << llfi_table.to_string();

  // 4: Section VII's proposed fix: GEP counted as arithmetic.
  TextTable gep_table({"App", "LLFI variant", "arith crash",
                       "PINFI arith crash", "gap"});
  for (auto& app : apps) {
    fault::PinfiEngine pinfi(app.program.program());
    const CellStats pinfi_arith =
        run_cell(pinfi, app.name, ir::Category::Arithmetic, trials);
    for (int variant = 0; variant < 2; ++variant) {
      fault::FaultModel model;
      std::string label = "gep excluded (paper's LLFI)";
      if (variant == 1) {
        model.llfi_gep_as_arithmetic = true;
        label = "gep counted as arithmetic (Sec. VII fix)";
      }
      fault::LlfiEngine engine(app.program.module(), model);
      const CellStats arith =
          run_cell(engine, app.name, ir::Category::Arithmetic, trials);
      gep_table.add_row({app.name, label, fmt(arith.crash),
                         fmt(pinfi_arith.crash),
                         fmt(std::abs(arith.crash - pinfi_arith.crash))});
    }
  }
  std::cout << "\nSection VII: treating getelementptr as arithmetic narrows "
               "the LLFI/PINFI\ncrash gap for address-computation-heavy "
               "code --\n"
            << gep_table.to_string();
  return 0;
}
