// Ablations of the paper's design choices (Sections IV and VII):
//   1. PINFI flag heuristic off  -> cmp-category activation collapses
//   2. PINFI XMM pruning off     -> double-arithmetic activation drops
//   3. LLFI full-64-bit flips    -> inflated corruption on narrow types
//   4. LLFI GEP-as-arithmetic    -> the paper's proposed fix for the
//                                   'arithmetic' crash divergence
// Run on two apps chosen for contrast: mcf (pointer/int heavy) and
// raytrace (double heavy).
//
// All fourteen cells run on ONE shared CampaignScheduler: each engine
// (app x model variant) is profiled once for every category it appears
// with, trials resume from checkpoints, and the worker pool never drains
// between tables. Cell values are identical to the old per-cell
// run_campaign loop — draws depend only on (seed, category, profiled
// count), none of which the shared scheduler changes.
#include <cmath>
#include <iostream>
#include <memory>

#include "common.h"
#include "support/table.h"

namespace {

using namespace faultlab;

struct CellStats {
  double activation = 0.0;
  double crash = 0.0;
  double sdc = 0.0;
};

CellStats cell_stats(const fault::CampaignResult& r) {
  CellStats s;
  if (!r.trials.empty())
    s.activation = 100.0 * static_cast<double>(r.activated()) /
                   static_cast<double>(r.trials.size());
  s.crash = r.crash_rate().percent();
  s.sdc = r.sdc_rate().percent();
  return s;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v);
  return buf;
}

}  // namespace

int main() {
  const std::size_t trials = fault::default_trials();
  benchx::print_banner("Ablations: PINFI heuristics and LLFI variants",
                       trials);

  const char* app_names[] = {"mcf", "raytrace"};
  std::vector<benchx::CompiledApp> apps;
  for (const char* n : app_names)
    apps.push_back({n, driver::compile(apps::benchmark(n).source, n)});

  // The manifest records one FaultModel for the whole run; the ablation
  // grid varies the model per engine, so the recorded flags are the
  // paper-default baseline (reporting only — each engine was constructed
  // with its own variant).
  fault::CampaignScheduler scheduler(benchx::default_scheduler_options());
  std::vector<std::unique_ptr<fault::InjectorEngine>> engines;
  std::size_t cells = 0;  // campaigns queued so far == result index
  auto add_cell = [&](fault::InjectorEngine& engine, const std::string& app,
                      ir::Category category) {
    fault::CampaignConfig cfg;
    cfg.app = app;
    cfg.category = category;
    cfg.trials = trials;
    scheduler.add(engine, cfg);
    return cells++;
  };

  // 1 + 2: PINFI heuristics (activation rates are what they exist for).
  struct PinfiRow {
    std::string app, label;
    std::size_t cmp, arith;
  };
  std::vector<PinfiRow> pinfi_rows;
  // Variant 0's engine is the paper-default PINFI; table 4 below reuses it
  // for its reference column.
  std::vector<fault::InjectorEngine*> default_pinfi;
  for (auto& app : apps) {
    for (int variant = 0; variant < 3; ++variant) {
      fault::FaultModel model;
      std::string label = "both heuristics (paper)";
      if (variant == 1) {
        model.pinfi_flag_heuristic = false;
        label = "flag heuristic OFF";
      } else if (variant == 2) {
        model.pinfi_xmm_prune = false;
        label = "xmm pruning OFF";
      }
      engines.push_back(
          std::make_unique<fault::PinfiEngine>(app.program.program(), model));
      fault::InjectorEngine& engine = *engines.back();
      if (variant == 0) default_pinfi.push_back(&engine);
      PinfiRow row;
      row.app = app.name;
      row.label = label;
      row.cmp = add_cell(engine, app.name, ir::Category::Cmp);
      row.arith = add_cell(engine, app.name, ir::Category::Arithmetic);
      pinfi_rows.push_back(std::move(row));
    }
  }

  // 3: LLFI bit-width policy.
  struct LlfiRow {
    std::string app, label;
    std::size_t all;
  };
  std::vector<LlfiRow> llfi_rows;
  for (auto& app : apps) {
    for (int variant = 0; variant < 2; ++variant) {
      fault::FaultModel model;
      std::string label = "type-width flips (paper)";
      if (variant == 1) {
        model.llfi_type_width = false;
        label = "full 64-bit flips";
      }
      engines.push_back(
          std::make_unique<fault::LlfiEngine>(app.program.module(), model));
      llfi_rows.push_back(
          {app.name, label,
           add_cell(*engines.back(), app.name, ir::Category::All)});
    }
  }

  // 4: Section VII's proposed fix: GEP counted as arithmetic. The PINFI
  // reference column reuses the default-model engine (and its arithmetic
  // cell) already queued for table 1.
  struct GepRow {
    std::string app, label;
    std::size_t arith, pinfi_arith;
  };
  std::vector<GepRow> gep_rows;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    auto& app = apps[a];
    const std::size_t pinfi_arith =
        add_cell(*default_pinfi[a], app.name, ir::Category::Arithmetic);
    for (int variant = 0; variant < 2; ++variant) {
      fault::FaultModel model;
      std::string label = "gep excluded (paper's LLFI)";
      if (variant == 1) {
        model.llfi_gep_as_arithmetic = true;
        label = "gep counted as arithmetic (Sec. VII fix)";
      }
      engines.push_back(
          std::make_unique<fault::LlfiEngine>(app.program.module(), model));
      gep_rows.push_back(
          {app.name, label,
           add_cell(*engines.back(), app.name, ir::Category::Arithmetic),
           pinfi_arith});
    }
  }

  const std::vector<fault::CampaignResult> results = scheduler.run();

  TextTable pinfi_table({"App", "Variant", "cmp activation",
                         "arith activation", "arith SDC"});
  for (const PinfiRow& row : pinfi_rows) {
    const CellStats cmp = cell_stats(results[row.cmp]);
    const CellStats arith = cell_stats(results[row.arith]);
    pinfi_table.add_row({row.app, row.label, fmt(cmp.activation),
                         fmt(arith.activation), fmt(arith.sdc)});
  }
  std::cout << "\nPINFI heuristics (Figure 2): both exist to raise fault "
               "activation --\n"
            << pinfi_table.to_string();

  TextTable llfi_table({"App", "Variant", "all crash", "all SDC",
                        "all activation"});
  for (const LlfiRow& row : llfi_rows) {
    const CellStats all = cell_stats(results[row.all]);
    llfi_table.add_row(
        {row.app, row.label, fmt(all.crash), fmt(all.sdc), fmt(all.activation)});
  }
  std::cout << "\nLLFI flip-width policy --\n" << llfi_table.to_string();

  TextTable gep_table({"App", "LLFI variant", "arith crash",
                       "PINFI arith crash", "gap"});
  for (const GepRow& row : gep_rows) {
    const CellStats arith = cell_stats(results[row.arith]);
    const CellStats pinfi_arith = cell_stats(results[row.pinfi_arith]);
    gep_table.add_row({row.app, row.label, fmt(arith.crash),
                       fmt(pinfi_arith.crash),
                       fmt(std::abs(arith.crash - pinfi_arith.crash))});
  }
  std::cout << "\nSection VII: treating getelementptr as arithmetic narrows "
               "the LLFI/PINFI\ncrash gap for address-computation-heavy "
               "code --\n"
            << gep_table.to_string();

  // Same artifact trio as the other benches: results CSV, run manifest,
  // and a BENCH_perf.json entry with checkpoint hit rates and latency
  // percentiles.
  benchx::ExperimentRun run;
  for (const fault::CampaignResult& r : results) {
    fault::CampaignResult copy = r;
    run.results.add(std::move(copy));
  }
  run.manifest = scheduler.manifest();
  run.seed = fault::CampaignConfig{}.seed;
  for (const auto& engine : engines) run.checkpoints += engine->checkpoint_stats();
  benchx::save_results(run, "ablation.csv");
  return 0;
}
