#include "common.h"

#include <cstdio>
#include <iostream>
#include <memory>

namespace faultlab::benchx {

std::vector<CompiledApp> compile_all_apps() {
  std::vector<CompiledApp> out;
  for (const auto& b : apps::all_benchmarks())
    out.push_back({b.name, driver::compile(b.source, b.name)});
  return out;
}

ExperimentRun run_experiment(const std::vector<CompiledApp>& apps,
                             const std::vector<ir::Category>& categories,
                             std::size_t trials,
                             const fault::FaultModel& model,
                             std::uint64_t seed) {
  fault::SchedulerOptions options;
  options.model = model;
  options.progress = [](const fault::SchedulerProgress& p) {
    if (p.completed == nullptr) return;
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.0f",
                  p.completed->wall_seconds > 0.0
                      ? static_cast<double>(p.completed->trials.size()) /
                            p.completed->wall_seconds
                      : 0.0);
    std::cerr << "  [" << p.completed->app << " / " << p.completed->tool
              << " / " << ir::category_name(p.completed->category) << "] "
              << p.campaigns_done << "/" << p.campaigns_total
              << " campaigns (" << rate << " trials/s)\n";
  };

  fault::CampaignScheduler scheduler(options);
  std::vector<std::unique_ptr<fault::InjectorEngine>> engines;
  for (const CompiledApp& app : apps) {
    engines.push_back(
        std::make_unique<fault::LlfiEngine>(app.program.module(), model));
    fault::InjectorEngine& llfi = *engines.back();
    engines.push_back(
        std::make_unique<fault::PinfiEngine>(app.program.program(), model));
    fault::InjectorEngine& pinfi = *engines.back();
    for (ir::Category category : categories) {
      fault::CampaignConfig cfg;
      cfg.app = app.name;
      cfg.category = category;
      cfg.trials = trials;
      cfg.seed = seed;
      scheduler.add(llfi, cfg);
      scheduler.add(pinfi, cfg);
    }
  }

  ExperimentRun out;
  for (fault::CampaignResult& r : scheduler.run())
    out.results.add(std::move(r));
  out.manifest = scheduler.manifest();
  return out;
}

void print_banner(const std::string& what, std::size_t trials) {
  std::cout
      << "================================================================\n"
      << what << "\n"
      << "Reproduction of Wei et al., \"Quantifying the Accuracy of "
         "High-Level\nFault Injection Techniques for Hardware Faults\" "
         "(DSN 2014)\n"
      << "Trials per (app x tool x category): " << trials
      << "  (set FAULTLAB_TRIALS to change; the paper uses 1000)\n"
      << "================================================================\n";
}

void save_results(const fault::ResultSet& rs, const std::string& filename) {
  fault::results_csv(rs).save(filename);
  std::cout << "\n[results written to ./" << filename << "]\n";
}

void save_results(const ExperimentRun& run, const std::string& filename) {
  save_results(run.results, filename);
  std::string stem = filename;
  if (stem.size() > 4 && stem.compare(stem.size() - 4, 4, ".csv") == 0)
    stem.resize(stem.size() - 4);
  const std::string manifest_path = stem + ".manifest.csv";
  fault::manifest_csv(run.manifest).save(manifest_path);
  std::cout << "[run manifest written to ./" << manifest_path << "]\n";
}

}  // namespace faultlab::benchx
