#include "common.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "machine/memory.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "support/env.h"

namespace faultlab::benchx {

namespace {

/// ISO-8601 UTC timestamp, e.g. "2026-08-05T12:34:56Z".
std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string host_name() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof buf - 1) != 0) return "unknown";
  return buf;
}

constexpr bool build_has_sanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

constexpr bool build_has_ndebug() {
#ifdef NDEBUG
  return true;
#else
  return false;
#endif
}

}  // namespace

std::vector<CompiledApp> compile_all_apps() {
  std::vector<CompiledApp> out;
  for (const auto& b : apps::all_benchmarks())
    out.push_back({b.name, driver::compile(b.source, b.name)});
  return out;
}

fault::SchedulerOptions default_scheduler_options(
    const fault::FaultModel& model) {
  fault::SchedulerOptions options;
  options.model = model;
  // FAULTLAB_THREADS pins the worker count (results are identical either
  // way; this exists so perf runs and CSV-diff checks are reproducible).
  options.threads = static_cast<std::size_t>(
      support::parse_env_u64("FAULTLAB_THREADS", 0));
  // With FAULTLAB_PROGRESS=1 the scheduler redraws its own \r status line;
  // these per-campaign lines would tear it, so they yield.
  if (!obs::progress_enabled()) {
    options.progress = [](const fault::SchedulerProgress& p) {
      if (p.completed == nullptr) return;
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.0f",
                    p.completed->wall_seconds > 0.0
                        ? static_cast<double>(p.completed->trials.size()) /
                              p.completed->wall_seconds
                        : 0.0);
      std::cerr << "  [" << p.completed->app << " / " << p.completed->tool
                << " / " << ir::category_name(p.completed->category) << "] "
                << p.campaigns_done << "/" << p.campaigns_total
                << " campaigns (" << rate << " trials/s)\n";
    };
  }
  return options;
}

ExperimentRun run_experiment(const std::vector<CompiledApp>& apps,
                             const std::vector<ir::Category>& categories,
                             std::size_t trials,
                             const fault::FaultModel& model,
                             const fault::Model& fault_model,
                             std::uint64_t seed) {
  fault::CampaignScheduler scheduler(default_scheduler_options(model));
  std::vector<std::unique_ptr<fault::InjectorEngine>> engines;
  for (const CompiledApp& app : apps) {
    engines.push_back(std::make_unique<fault::LlfiEngine>(
        app.program.module(), model, fault::CheckpointPolicy::from_env(),
        fault_model));
    fault::InjectorEngine& llfi = *engines.back();
    engines.push_back(std::make_unique<fault::PinfiEngine>(
        app.program.program(), model, fault::CheckpointPolicy::from_env(),
        fault_model));
    fault::InjectorEngine& pinfi = *engines.back();
    for (ir::Category category : categories) {
      fault::CampaignConfig cfg;
      cfg.app = app.name;
      cfg.category = category;
      cfg.trials = trials;
      cfg.seed = seed;
      scheduler.add(llfi, cfg);
      scheduler.add(pinfi, cfg);
    }
  }

  ExperimentRun out;
  for (fault::CampaignResult& r : scheduler.run())
    out.results.add(std::move(r));
  out.manifest = scheduler.manifest();
  out.seed = seed;
  // The engines die with this scope: fold their checkpoint counters and
  // phase times into the run record first.
  for (const auto& engine : engines) {
    out.checkpoints += engine->checkpoint_stats();
    out.phases += engine->phase_stats();
  }
  return out;
}

void print_banner(const std::string& what, std::size_t trials) {
  std::cout
      << "================================================================\n"
      << what << "\n"
      << "Reproduction of Wei et al., \"Quantifying the Accuracy of "
         "High-Level\nFault Injection Techniques for Hardware Faults\" "
         "(DSN 2014)\n"
      << "Trials per (app x tool x category): " << trials
      << "  (set FAULTLAB_TRIALS to change; the paper uses 1000)\n"
      << "================================================================\n";
}

void save_results(const fault::ResultSet& rs, const std::string& filename) {
  fault::results_csv(rs).save(filename);
  std::cout << "\n[results written to ./" << filename << "]\n";
}

void save_results(const ExperimentRun& run, const std::string& filename) {
  save_results(run.results, filename);
  std::string stem = filename;
  if (stem.size() > 4 && stem.compare(stem.size() - 4, 4, ".csv") == 0)
    stem.resize(stem.size() - 4);
  const std::string manifest_path = stem + ".manifest.csv";
  fault::manifest_csv(run.manifest).save(manifest_path);
  std::cout << "[run manifest written to ./" << manifest_path << "]\n";
  write_perf_entry(stem, run);
}

void write_perf_entry(const std::string& experiment,
                      const ExperimentRun& run) {
  static const char* const kPath = "BENCH_perf.json";
  std::size_t trials = 0;
  for (const fault::CampaignTiming& t : run.manifest.campaigns)
    trials += t.trials;
  const double wall = run.manifest.wall_seconds;
  const fault::CheckpointStats& cp = run.checkpoints;
  // A zero stride means checkpointing was off (FAULTLAB_CHECKPOINTS=0) and
  // a checkpointed run with FAULTLAB_DELTA_RESTORE=0 rewrites the full page
  // table per trial; keep each mode under its own key so the manifest holds
  // every side of the direct / full-restore / delta-restore comparison
  // across PRs.
  const bool delta = machine::delta_restore_enabled();
  std::string key = cp.stride == 0
                        ? experiment + "_direct"
                        : (delta ? experiment
                                 : experiment + "_fullrestore");
  // Non-default dispatch runs get their own key (e.g.
  // "fig3_aggregate_switchdispatch"), so an interleaved A/B pair from one
  // process coexists in the manifest; threaded owns the plain key.
  if (run.manifest.dispatch_mode != "threaded")
    key += "_" + run.manifest.dispatch_mode + "dispatch";
  // Likewise single-lane runs: the lockstep multi-lane configuration owns
  // the plain key, a lanes=1 leg is suffixed so the A/B pair coexists.
  if (run.manifest.lanes == 1) key += "_lanes1";
  // Propagation-traced runs (FAULTLAB_PROP) pay the hooked slow path for
  // the whole post-injection suffix; keep them under their own key so the
  // untraced baseline is never overwritten by the traced leg.
  if (obs::prop_enabled()) key += "_prop";

  // One entry = one line, so the upsert below can merge without a JSON
  // parser: keep every other experiment's line, replace ours.
  std::ostringstream entry;
  entry << "  \"" << key << "\": {"
        << "\"wall_seconds\": " << wall << ", "
        << "\"profile_seconds\": " << run.manifest.profile_seconds << ", "
        << "\"trials\": " << trials << ", "
        << "\"trials_per_second\": " << (wall > 0.0 ? trials / wall : 0.0)
        << ", "
        << "\"threads\": " << run.manifest.threads << ", "
        << "\"seed\": " << run.seed << ", "
        << "\"snapshots\": " << cp.snapshots << ", "
        << "\"snapshot_stride\": " << cp.stride << ", "
        << "\"restored_trials\": " << cp.restored_trials << ", "
        << "\"snapshot_hit_rate\": " << cp.hit_rate() << ", "
        << "\"skipped_instructions\": " << cp.skipped_instructions << ", "
        << "\"delta_restore\": " << (delta ? "true" : "false") << ", "
        << "\"delta_restores\": " << cp.delta_restores << ", "
        << "\"restored_pages\": " << cp.restored_pages << ", "
        << "\"mean_restored_pages\": " << cp.mean_restored_pages() << ", "
        << "\"snapshot_evictions\": " << cp.evictions << ", "
        << "\"dispatch_mode\": \""
        << obs::json_escape(run.manifest.dispatch_mode) << "\", "
        << "\"trace_decodes\": " << run.manifest.trace_decodes << ", "
        << "\"trace_hits\": " << run.manifest.trace_hits << ", "
        << "\"trace_invalidations\": " << run.manifest.trace_invalidations
        << ", "
        << "\"decoded_blocks\": " << run.manifest.decoded_blocks << ", "
        << "\"lanes\": " << run.manifest.lanes << ", "
        << "\"pack_groups\": " << run.manifest.pack_groups << ", "
        << "\"pack_lanes\": " << run.manifest.pack_lanes << ", "
        << "\"mean_pack_lanes\": " << run.manifest.mean_pack_lanes() << ", "
        << "\"pack_uops\": " << run.manifest.pack_uops << ", "
        << "\"pack_lane_uops\": " << run.manifest.pack_lane_uops << ", "
        << "\"pack_divergences\": " << run.manifest.pack_divergences << ", "
        << "\"restore_seconds\": " << run.phases.restore_seconds << ", "
        << "\"execute_seconds\": " << run.phases.execute_seconds << ", "
        << "\"classify_seconds\": " << run.phases.classify_seconds << ", "
        << "\"timestamp\": \"" << obs::json_escape(utc_timestamp()) << "\", "
        << "\"hostname\": \"" << obs::json_escape(host_name()) << "\", "
        << "\"sanitizer\": " << (build_has_sanitizer() ? "true" : "false")
        << ", "
        << "\"ndebug\": " << (build_has_ndebug() ? "true" : "false") << ", "
        << "\"ci_target\": " << run.manifest.ci_target << ", "
        << "\"converged_campaigns\": "
        << [&] {
             std::size_t n = 0;
             for (const fault::CampaignTiming& t : run.manifest.campaigns)
               if (t.converged) ++n;
             return n;
           }()
        << ", "
        << "\"watchdog_flags\": "
        << [&] {
             std::uint64_t n = 0;
             for (const fault::CampaignTiming& t : run.manifest.campaigns)
               n += t.watchdog_flags;
             return n;
           }()
        << ", "
        << "\"campaigns\": {";
  bool first_campaign = true;
  for (const fault::CampaignTiming& t : run.manifest.campaigns) {
    const std::string campaign_key =
        t.app + "/" + t.tool + "/" + ir::category_name(t.category);
    entry << (first_campaign ? "" : ", ") << "\""
          << obs::json_escape(campaign_key) << "\": {"
          << "\"trials\": " << t.trials << ", "
          << "\"crash\": " << t.crash << ", "
          << "\"sdc\": " << t.sdc << ", "
          << "\"benign\": " << t.benign << ", "
          << "\"hang\": " << t.hang << ", "
          << "\"not_activated\": " << t.not_activated << ", "
          << "\"restored\": " << t.restored << ", "
          << "\"hit_rate\": " << t.hit_rate() << ", "
          << "\"delta_restores\": " << t.delta_restores << ", "
          << "\"mean_restored_pages\": " << t.mean_restored_pages << ", "
          << "\"p50_ms\": " << t.p50_ms << ", "
          << "\"p95_ms\": " << t.p95_ms << ", "
          << "\"p99_ms\": " << t.p99_ms << ", "
          << "\"converged\": " << (t.converged ? "true" : "false") << ", "
          << "\"ci_halfwidth\": " << t.ci_halfwidth << ", "
          << "\"watchdog_flags\": " << t.watchdog_flags << "}";
    first_campaign = false;
  }
  entry << "}}";

  std::vector<std::string> kept;
  {
    std::ifstream in(kPath);
    const std::string prefix = "  \"" + key + "\":";
    for (std::string line; std::getline(in, line);) {
      if (line.empty() || line[0] != ' ') continue;  // braces / garbage
      if (line.compare(0, prefix.size(), prefix) == 0) continue;
      if (!line.empty() && line.back() == ',') line.pop_back();
      kept.push_back(line);
    }
  }
  kept.push_back(entry.str());

  std::ofstream out(kPath, std::ios::trunc);
  out << "{\n";
  for (std::size_t i = 0; i < kept.size(); ++i)
    out << kept[i] << (i + 1 < kept.size() ? ",\n" : "\n");
  out << "}\n";
  std::cout << "[perf entry '" << key << "' written to ./" << kPath
            << "]\n";
}

}  // namespace faultlab::benchx
