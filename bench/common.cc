#include "common.h"

#include <iostream>

namespace faultlab::benchx {

std::vector<CompiledApp> compile_all_apps() {
  std::vector<CompiledApp> out;
  for (const auto& b : apps::all_benchmarks())
    out.push_back({b.name, driver::compile(b.source, b.name)});
  return out;
}

fault::ResultSet run_experiment(const std::vector<CompiledApp>& apps,
                                const std::vector<ir::Category>& categories,
                                std::size_t trials,
                                const fault::FaultModel& model,
                                std::uint64_t seed) {
  fault::ResultSet rs;
  for (const CompiledApp& app : apps) {
    fault::LlfiEngine llfi(app.program.module(), model);
    fault::PinfiEngine pinfi(app.program.program(), model);
    for (ir::Category category : categories) {
      fault::CampaignConfig cfg;
      cfg.app = app.name;
      cfg.category = category;
      cfg.trials = trials;
      cfg.seed = seed;
      rs.add(fault::run_campaign(llfi, cfg));
      rs.add(fault::run_campaign(pinfi, cfg));
      std::cerr << "  [" << app.name << " / " << ir::category_name(category)
                << "] done\n";
    }
  }
  return rs;
}

void print_banner(const std::string& what, std::size_t trials) {
  std::cout
      << "================================================================\n"
      << what << "\n"
      << "Reproduction of Wei et al., \"Quantifying the Accuracy of "
         "High-Level\nFault Injection Techniques for Hardware Faults\" "
         "(DSN 2014)\n"
      << "Trials per (app x tool x category): " << trials
      << "  (set FAULTLAB_TRIALS to change; the paper uses 1000)\n"
      << "================================================================\n";
}

void save_results(const fault::ResultSet& rs, const std::string& filename) {
  fault::results_csv(rs).save(filename);
  std::cout << "\n[results written to ./" << filename << "]\n";
}

}  // namespace faultlab::benchx
