// Figure 4 (a-e): SDC percentages with 95% confidence intervals per
// instruction category — the paper's central accuracy result: LLFI's SDC
// rates match PINFI's within measurement error for most cells.
#include <iostream>

#include "common.h"
#include "fault/compare.h"

int main() {
  using namespace faultlab;
  const std::size_t trials = fault::default_trials();
  benchx::print_banner("Figure 4: SDC results for LLFI and PINFI", trials);

  auto apps = benchx::compile_all_apps();
  const std::vector<ir::Category> cats(std::begin(ir::kAllCategories),
                                       std::end(ir::kAllCategories));
  benchx::ExperimentRun run = benchx::run_experiment(apps, cats, trials);
  const fault::ResultSet& rs = run.results;

  std::cout << "\n" << fault::render_figure4(rs);

  const fault::HeadlineFindings h = fault::summarize(rs);
  std::cout << "\n" << fault::render_summary(h);
  std::cout << "(paper: SDC differences within measurement error for most "
               "programs and categories)\n";

  benchx::save_results(run, "fig4_sdc.csv");
  return 0;
}
